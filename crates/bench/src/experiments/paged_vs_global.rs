//! **Figure D** (the paper's future work, Section IV) — paging effects in
//! dictionary compression: how the realistic per-page dictionary differs from
//! the simplified global model, and what that does to the estimator.

use crate::report::{fmt, Report, Table};
use crate::workloads::paper_table;
use samplecf_compression::{DictionaryCompression, GlobalDictionaryCompression};
use samplecf_core::{ExactCf, SampleCf, TrialConfig, TrialRunner};
use samplecf_index::{IndexBuilder, IndexSpec};
use samplecf_sampling::SamplerKind;

/// Run the experiment.
pub fn run(quick: bool) -> Report {
    let rows = if quick { 10_000 } else { 50_000 };
    let trials = if quick { 15 } else { 40 };
    let width: u16 = 32;
    let f = 0.02;
    let spec = IndexSpec::nonclustered("idx_a", ["a"]).expect("valid spec");
    let runner = TrialRunner::new(TrialConfig::new(trials).base_seed(999));

    let mut report = Report::new("exp_paged_vs_global");

    // Part 1: true CF of the two dictionary variants across d/n.
    let ratios = [0.001, 0.01, 0.05, 0.1, 0.25, 0.5];
    let mut t = Table::new(
        format!(
            "True CF: paged (inline per-page dictionary) vs global model (n = {rows}, k = {width})"
        ),
        &["d/n", "d", "CF paged", "CF global", "paged / global"],
    );
    let mut t_err = Table::new(
        format!("Estimator error against each variant (f = {f}, {trials} trials)"),
        &[
            "d/n",
            "mean ratio error vs paged",
            "mean ratio error vs global",
        ],
    );
    for &ratio in &ratios {
        let d = ((rows as f64 * ratio).round() as usize).max(2);
        let generated = paper_table(rows, width, d, 1_000 + d as u64);
        let exact_paged = ExactCf::new()
            .compute(&generated.table, &spec, &DictionaryCompression::default())
            .expect("exact paged succeeds");
        let exact_global = ExactCf::new()
            .compute(
                &generated.table,
                &spec,
                &GlobalDictionaryCompression::default(),
            )
            .expect("exact global succeeds");
        t.row(&[
            format!("{ratio}"),
            d.to_string(),
            fmt(exact_paged.cf),
            fmt(exact_global.cf),
            fmt(exact_paged.cf / exact_global.cf),
        ]);

        let paged_summary = runner
            .run(
                &generated.table,
                &spec,
                &DictionaryCompression::default(),
                SamplerKind::UniformWithReplacement(f),
            )
            .expect("paged trials succeed");
        let global_summary = runner
            .run(
                &generated.table,
                &spec,
                &GlobalDictionaryCompression::default(),
                SamplerKind::UniformWithReplacement(f),
            )
            .expect("global trials succeed");
        t_err.row(&[
            format!("{ratio}"),
            fmt(paged_summary.mean_ratio_error()),
            fmt(global_summary.mean_ratio_error()),
        ]);
    }
    t.note(
        "Expected shape: at small d/n the index is sorted, so whole leaf pages hold one or two \
         values and the paged variant compresses *better* than the na\u{ef}ve global accounting; as \
         d/n grows, per-page dictionaries repeat values across pages and the paged CF exceeds \
         the global one.",
    );
    t_err.note(
        "Expected shape: the estimator tracks the global model well, but against the paged \
         variant it inherits an extra error at small d/n because the sample's pages mix many \
         more distinct values per page than the full sorted index does — the paging effect the \
         paper leaves to future work.",
    );
    report.add(t);
    report.add(t_err);

    // Part 2: page size ablation at fixed d/n.
    let d = rows / 20;
    let generated = paper_table(rows, width, d, 4_321);
    let mut t2 = Table::new(
        format!("Page-size ablation (paged dictionary, d = {d})"),
        &[
            "page size",
            "leaf pages",
            "true CF",
            "estimate (single run)",
            "ratio error",
        ],
    );
    for page_size in [1024usize, 4096, 8192, 16384] {
        let builder = IndexBuilder::new().page_size(page_size);
        let exact = ExactCf::with_builder(builder)
            .compute(&generated.table, &spec, &DictionaryCompression::default())
            .expect("exact succeeds");
        let est = SampleCf::with_fraction(f)
            .seed(17)
            .builder(builder)
            .estimate(&generated.table, &spec, &DictionaryCompression::default())
            .expect("estimate succeeds");
        t2.row(&[
            page_size.to_string(),
            exact.report.leaf_pages.to_string(),
            fmt(exact.cf),
            fmt(est.cf),
            fmt(samplecf_core::ratio_error(est.cf, exact.cf)),
        ]);
    }
    t2.note(
        "Expected shape: larger pages amortise the inline dictionary over more rows, so the true \
         CF falls with page size; the estimator error is largest for small pages where per-page \
         dictionary repetition dominates.",
    );
    report.add(t2);
    report
}
