//! Runs the progressive-stopping experiment (adaptive vs fixed-fraction
//! sampling on disk-resident tables) and writes its report under `results/`.

use samplecf_bench::experiments::{progressive_stopping, quick_mode};

fn main() {
    let report = progressive_stopping::run(quick_mode());
    let path = report.finish().expect("writing the report succeeds");
    eprintln!("report written to {}", path.display());
}
