//! **Figure A** (implied by Section III-A) — Null Suppression accuracy as a
//! function of the sampling fraction, including the non-uniform samplers the
//! paper does not analyse.

use crate::report::{fmt, Report, Table};
use crate::workloads::paper_table;
use samplecf_compression::NullSuppression;
use samplecf_core::{theory, TrialConfig, TrialRunner};
use samplecf_index::IndexSpec;
use samplecf_sampling::SamplerKind;

/// Run the experiment.
pub fn run(quick: bool) -> Report {
    let rows = if quick { 10_000 } else { 50_000 };
    let trials = if quick { 30 } else { 100 };
    let width: u16 = 40;
    let generated = paper_table(rows, width, rows / 5, 81);
    let spec = IndexSpec::nonclustered("idx_a", ["a"]).expect("valid spec");
    let runner = TrialRunner::new(TrialConfig::new(trials).base_seed(4242));

    let mut report = Report::new("exp_ns_fraction_sweep");
    let fractions = [0.0005, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2];

    let mut t = Table::new(
        format!("Null suppression: accuracy vs sampling fraction (n = {rows}, {trials} trials)"),
        &[
            "f",
            "sample rows",
            "relative bias",
            "empirical std",
            "Theorem-1 bound",
            "mean ratio error",
            "p95 ratio error",
        ],
    );
    for &f in &fractions {
        let summary = runner
            .run(
                &generated.table,
                &spec,
                &NullSuppression,
                SamplerKind::UniformWithReplacement(f),
            )
            .expect("trials succeed");
        t.row(&[
            format!("{f}"),
            format!("{}", (rows as f64 * f).round() as usize),
            fmt(summary.relative_bias()),
            format!("{:.2e}", summary.empirical_std_dev()),
            format!("{:.2e}", theory::ns_stddev_bound(rows, f)),
            fmt(summary.mean_ratio_error()),
            fmt(summary.ratio_error_stats.p95),
        ]);
    }
    t.note(
        "Expected shape: bias stays ≈ 0 at every fraction; the standard deviation and the \
         ratio error fall as 1/sqrt(f·n) and stay under the Theorem-1 bound.",
    );
    report.add(t);

    // Sampler comparison at a fixed fraction.
    let f = 0.01;
    let samplers = [
        SamplerKind::UniformWithReplacement(f),
        SamplerKind::UniformWithoutReplacement(f),
        SamplerKind::Bernoulli(f),
        SamplerKind::Systematic(f),
        SamplerKind::Block(f),
    ];
    let mut t2 = Table::new(
        format!("Null suppression: sampler comparison at f = {f}"),
        &[
            "sampler",
            "relative bias",
            "empirical std",
            "mean ratio error",
            "max ratio error",
        ],
    );
    for sampler in samplers {
        let summary = runner
            .run(&generated.table, &spec, &NullSuppression, sampler)
            .expect("trials succeed");
        t2.row(&[
            sampler.label(),
            fmt(summary.relative_bias()),
            format!("{:.2e}", summary.empirical_std_dev()),
            fmt(summary.mean_ratio_error()),
            fmt(summary.max_ratio_error()),
        ]);
    }
    t2.note(
        "Expected shape: every row-level sampler matches the with-replacement analysis; block \
         sampling is also accurate here because value lengths are independent of page placement \
         in the shuffled layout.",
    );
    report.add(t2);
    report
}
