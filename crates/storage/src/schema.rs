//! Table schemas: ordered collections of named, typed columns.

use crate::datatype::DataType;
use crate::error::{StorageError, StorageResult};
use crate::value::Value;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (unique within a schema).
    pub name: String,
    /// Declared data type.
    pub datatype: DataType,
    /// Whether NULLs are allowed.
    pub nullable: bool,
}

impl Column {
    /// Create a non-nullable column.
    pub fn new(name: impl Into<String>, datatype: DataType) -> Self {
        Column {
            name: name.into(),
            datatype,
            nullable: false,
        }
    }

    /// Create a nullable column.
    pub fn nullable(name: impl Into<String>, datatype: DataType) -> Self {
        Column {
            name: name.into(),
            datatype,
            nullable: true,
        }
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.datatype)?;
        if !self.nullable {
            write!(f, " not null")?;
        }
        Ok(())
    }
}

/// An ordered set of columns describing the shape of a table or index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Arc<Vec<Column>>,
}

impl Schema {
    /// Build a schema from a list of columns.
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidSchema`] if the column list is empty,
    /// contains duplicate names, or contains a zero-width character column.
    pub fn new(columns: Vec<Column>) -> StorageResult<Self> {
        if columns.is_empty() {
            return Err(StorageError::InvalidSchema(
                "schema must have at least one column".to_string(),
            ));
        }
        let mut seen = HashSet::new();
        for c in &columns {
            if c.name.is_empty() {
                return Err(StorageError::InvalidSchema(
                    "column names must be non-empty".to_string(),
                ));
            }
            if !seen.insert(c.name.clone()) {
                return Err(StorageError::InvalidSchema(format!(
                    "duplicate column name `{}`",
                    c.name
                )));
            }
            if let DataType::Char(0) | DataType::VarChar(0) = c.datatype {
                return Err(StorageError::InvalidSchema(format!(
                    "column `{}` has zero width",
                    c.name
                )));
            }
        }
        Ok(Schema {
            columns: Arc::new(columns),
        })
    }

    /// Convenience constructor for the paper's canonical single-column
    /// `char(k)` table.
    pub fn single_char(name: impl Into<String>, k: u16) -> Self {
        Schema::new(vec![Column::new(name, DataType::Char(k))])
            .expect("single char(k>0) column is always a valid schema")
    }

    /// The columns, in declaration order.
    #[must_use]
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the column with the given name.
    pub fn column_index(&self, name: &str) -> StorageResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| StorageError::UnknownColumn(name.to_string()))
    }

    /// The column with the given name.
    pub fn column(&self, name: &str) -> StorageResult<&Column> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// The column at the given position.
    #[must_use]
    pub fn column_at(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Total uncompressed width of one row in bytes (the paper's `k` summed
    /// over all columns).
    #[must_use]
    pub fn row_width(&self) -> usize {
        self.columns
            .iter()
            .map(|c| c.datatype.uncompressed_width())
            .sum()
    }

    /// Validate a row of values against this schema.
    pub fn validate_row(&self, values: &[Value]) -> StorageResult<()> {
        if values.len() != self.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.arity(),
                found: values.len(),
            });
        }
        for (v, c) in values.iter().zip(self.columns.iter()) {
            if v.is_null() && !c.nullable {
                return Err(StorageError::TypeMismatch {
                    column: c.name.clone(),
                    expected: format!("{} not null", c.datatype),
                    found: "null".to_string(),
                });
            }
            v.conforms_to(&c.datatype, &c.name)?;
        }
        Ok(())
    }

    /// Project this schema onto a subset of columns (used to derive the key
    /// schema of an index).  Column order follows the order of `names`.
    pub fn project(&self, names: &[&str]) -> StorageResult<Schema> {
        let mut cols = Vec::with_capacity(names.len());
        for name in names {
            cols.push(self.column(name)?.clone());
        }
        Schema::new(cols)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_col_schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Char(10)),
            Column::nullable("b", DataType::Int32),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_empty_and_duplicate() {
        assert!(Schema::new(vec![]).is_err());
        assert!(Schema::new(vec![
            Column::new("a", DataType::Int32),
            Column::new("a", DataType::Int64),
        ])
        .is_err());
        assert!(Schema::new(vec![Column::new("a", DataType::Char(0))]).is_err());
        assert!(Schema::new(vec![Column::new("", DataType::Char(5))]).is_err());
    }

    #[test]
    fn single_char_helper() {
        let s = Schema::single_char("a", 20);
        assert_eq!(s.arity(), 1);
        assert_eq!(s.row_width(), 20);
        assert_eq!(s.column_at(0).datatype, DataType::Char(20));
    }

    #[test]
    fn row_width_sums_columns() {
        assert_eq!(two_col_schema().row_width(), 14);
    }

    #[test]
    fn column_lookup() {
        let s = two_col_schema();
        assert_eq!(s.column_index("b").unwrap(), 1);
        assert!(s.column_index("zzz").is_err());
        assert_eq!(s.column("a").unwrap().datatype, DataType::Char(10));
    }

    #[test]
    fn validate_row_checks_arity_nullability_and_types() {
        let s = two_col_schema();
        assert!(s.validate_row(&[Value::str("hi"), Value::int(3)]).is_ok());
        assert!(s.validate_row(&[Value::str("hi")]).is_err());
        assert!(s.validate_row(&[Value::Null, Value::int(3)]).is_err());
        assert!(s.validate_row(&[Value::str("hi"), Value::Null]).is_ok());
        assert!(s
            .validate_row(&[Value::str("way too long for ten"), Value::int(1)])
            .is_err());
    }

    #[test]
    fn projection_reorders_and_errors_on_unknown() {
        let s = two_col_schema();
        let p = s.project(&["b", "a"]).unwrap();
        assert_eq!(p.column_at(0).name, "b");
        assert_eq!(p.column_at(1).name, "a");
        assert!(s.project(&["nope"]).is_err());
    }

    #[test]
    fn display_is_readable() {
        let s = two_col_schema();
        let d = s.to_string();
        assert!(d.contains("a char(10) not null"));
        assert!(d.contains("b int"));
    }
}
