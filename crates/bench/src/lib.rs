//! # samplecf-bench
//!
//! Experiment harness shared by the reproduction binaries (`src/bin/exp_*`)
//! and the criterion benchmarks.  Each binary regenerates one table or
//! figure from the paper, prints a markdown table, and (via [`Report`])
//! writes it under `results/`.  See `crates/bench/README.md` for the full
//! experiment-to-paper mapping.
//!
//! ## Quickstart
//!
//! ```
//! use samplecf_bench::paper_table;
//! use samplecf_bench::report::{Report, Table};
//!
//! // The workload the paper's evaluation uses: one char(20) column with a
//! // controlled distinct count.
//! let generated = paper_table(2_000, 20, 100, 7);
//! assert_eq!(generated.table.num_rows(), 2_000);
//!
//! // Experiments assemble markdown tables into a Report.
//! let mut table = Table::new("Demo", &["metric", "value"]);
//! table.row(&["rows".to_string(), generated.table.num_rows().to_string()]);
//! let mut report = Report::new("demo");
//! report.add(table);
//! assert!(report.to_markdown().contains("rows"));
//! ```

pub mod experiments;
pub mod load;
pub mod report;
pub mod workloads;

pub use load::{run_load, LoadConfig, LoadOutcome};
pub use report::{Report, Table};
pub use workloads::{paper_table, PaperWorkload};
