//! Error types for synthetic data generation.

use samplecf_storage::StorageError;
use std::fmt;

/// Errors produced while generating synthetic tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatagenError {
    /// A generator parameter was invalid (zero distinct values, width too
    /// small to make the requested number of distinct strings, ...).
    InvalidSpec(String),
    /// An underlying storage operation failed.
    Storage(StorageError),
}

impl fmt::Display for DatagenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatagenError::InvalidSpec(msg) => write!(f, "invalid generator specification: {msg}"),
            DatagenError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for DatagenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatagenError::Storage(e) => Some(e),
            DatagenError::InvalidSpec(_) => None,
        }
    }
}

impl From<StorageError> for DatagenError {
    fn from(e: StorageError) -> Self {
        DatagenError::Storage(e)
    }
}

/// Result alias for generator operations.
pub type DatagenResult<T> = Result<T, DatagenError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        assert!(DatagenError::InvalidSpec("d = 0".into())
            .to_string()
            .contains("d = 0"));
        let e: DatagenError = StorageError::UnknownColumn("c".into()).into();
        assert!(e.to_string().contains("storage"));
    }
}
