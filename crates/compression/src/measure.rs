//! Batch measure kernels over borrowed cells.
//!
//! The estimator only ever needs the compressed *size* of a chunk, not its
//! bytes.  [`CellChunk`] is the zero-copy input to that size computation: a
//! column's worth of [`CellRef`]s borrowed straight out of page records, with
//! no [`Value`](samplecf_storage::Value) materialised.  Each scheme computes
//! its exact output size from these views alone — run counting for RLE, a
//! common-prefix scan for prefix compression, distinct-cell accounting for
//! dictionaries — while the byte-producing `compress_*` path remains the
//! oracle the kernels are verified against (the default
//! [`measure_chunk`](crate::CompressionScheme::measure_chunk) decodes and
//! compresses for real, and the differential test suite asserts every
//! override matches it byte for byte).
//!
//! This is sound because the stored fixed-width encoding is canonical and
//! injective per datatype: two non-null cells are value-equal iff their raw
//! bytes are equal, and every null-suppressed payload is a subslice of the
//! raw cell (see [`ns_payload_from_raw`]).  Equal inputs therefore take equal
//! branches in both paths, so the computed size is the byte count the codec
//! would have written.

use crate::chunk::ColumnChunk;
use crate::encoding::{marker_width, ns_payload_from_raw};
use crate::error::{CompressionError, CompressionResult};
use crate::scheme::{CompressionOutcome, CompressionScheme};
use samplecf_storage::{CellRef, DataType};

/// A column's worth of borrowed cells (one page), the zero-copy counterpart
/// of [`ColumnChunk`].
#[derive(Debug, Clone)]
pub struct CellChunk<'a> {
    datatype: DataType,
    cells: Vec<CellRef<'a>>,
}

impl<'a> CellChunk<'a> {
    /// Create a chunk, validating that every cell has the datatype's
    /// declared fixed width.
    pub fn new(datatype: DataType, cells: Vec<CellRef<'a>>) -> CompressionResult<Self> {
        let width = datatype.uncompressed_width();
        for c in &cells {
            if c.bytes().len() != width {
                return Err(CompressionError::Corrupt(format!(
                    "cell of {} bytes in a column of declared width {width}",
                    c.bytes().len()
                )));
            }
        }
        Ok(CellChunk { datatype, cells })
    }

    /// The column datatype.
    #[must_use]
    pub fn datatype(&self) -> DataType {
        self.datatype
    }

    /// The borrowed cells.
    #[must_use]
    pub fn cells(&self) -> &[CellRef<'a>] {
        &self.cells
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the chunk holds no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Uncompressed size: every cell at its declared fixed width (matches
    /// [`ColumnChunk::uncompressed_bytes`]).
    #[must_use]
    pub fn uncompressed_bytes(&self) -> usize {
        self.len() * self.datatype.uncompressed_width()
    }

    /// Materialise the owned [`ColumnChunk`] — the oracle path the batch
    /// kernels are verified against.
    pub fn decode(&self) -> CompressionResult<ColumnChunk> {
        let values = self
            .cells
            .iter()
            .map(|c| {
                c.to_value(&self.datatype)
                    .map_err(|e| CompressionError::Corrupt(e.to_string()))
            })
            .collect::<CompressionResult<Vec<_>>>()?;
        ColumnChunk::new(self.datatype, values)
    }
}

/// Size in bytes that [`write_ns_cell`](crate::encoding::write_ns_cell)
/// produces for a raw cell — the zero-copy counterpart of
/// [`ns_cell_size`](crate::encoding::ns_cell_size).
#[must_use]
pub fn ns_cell_size_raw(cell: CellRef<'_>, dt: &DataType) -> usize {
    let width = marker_width(dt);
    if cell.is_null() {
        width
    } else {
        width + ns_payload_from_raw(cell.bytes(), dt).len()
    }
}

/// Measure a column of borrowed chunks and report its sizes — the zero-copy
/// counterpart of [`measure_column`](crate::measure_column).
pub fn measure_cells(
    scheme: &dyn CompressionScheme,
    chunks: &[CellChunk<'_>],
) -> CompressionResult<CompressionOutcome> {
    let uncompressed: usize = chunks.iter().map(CellChunk::uncompressed_bytes).sum();
    let compressed = scheme.measure_chunks(chunks)?;
    Ok(CompressionOutcome::new(uncompressed, compressed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::{DictionaryCompression, GlobalDictionaryCompression};
    use crate::none::Uncompressed;
    use crate::null_suppression::NullSuppression;
    use crate::prefix::PrefixCompression;
    use crate::rle::RunLengthEncoding;
    use crate::scheme::measure_column;
    use samplecf_storage::{encode_cell, Value};

    /// Encode values into raw fixed-width cells, returning the backing store
    /// plus the null flags (a NULL is stored as a zeroed placeholder, exactly
    /// as the row codec writes it).
    fn raw_cells(values: &[Value], dt: &DataType) -> Vec<(bool, Vec<u8>)> {
        values
            .iter()
            .map(|v| {
                let mut out = Vec::new();
                if v.is_null() {
                    out.resize(dt.uncompressed_width(), 0);
                } else {
                    encode_cell(v, dt, &mut out).unwrap();
                }
                (v.is_null(), out)
            })
            .collect()
    }

    fn schemes() -> Vec<Box<dyn CompressionScheme>> {
        vec![
            Box::new(Uncompressed),
            Box::new(NullSuppression),
            Box::new(RunLengthEncoding),
            Box::new(PrefixCompression),
            Box::new(DictionaryCompression::default()),
            Box::new(GlobalDictionaryCompression::default()),
        ]
    }

    fn assert_measures_match(dt: DataType, pages: &[Vec<Value>]) {
        let backing: Vec<Vec<(bool, Vec<u8>)>> =
            pages.iter().map(|vals| raw_cells(vals, &dt)).collect();
        let cell_chunks: Vec<CellChunk<'_>> = backing
            .iter()
            .map(|cells| {
                CellChunk::new(
                    dt,
                    cells
                        .iter()
                        .map(|(null, bytes)| CellRef::new(*null, bytes))
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        let value_chunks: Vec<ColumnChunk> = pages
            .iter()
            .map(|vals| ColumnChunk::new(dt, vals.clone()).unwrap())
            .collect();
        for scheme in schemes() {
            let oracle = measure_column(scheme.as_ref(), &value_chunks).unwrap();
            let batch = measure_cells(scheme.as_ref(), &cell_chunks).unwrap();
            assert_eq!(
                batch,
                oracle,
                "scheme {} disagrees on {dt:?}",
                scheme.name()
            );
            // Per-chunk kernels agree with the byte-producing oracle too
            // (global dictionary's per-chunk API degenerates to paged).
            for (cc, vc) in cell_chunks.iter().zip(&value_chunks) {
                assert_eq!(
                    scheme.measure_chunk(cc).unwrap(),
                    scheme.compress_chunk(vc).unwrap().compressed_bytes(),
                    "scheme {} per-chunk size",
                    scheme.name()
                );
            }
        }
    }

    #[test]
    fn kernels_match_oracle_on_text() {
        let pages = vec![
            vec![
                Value::str("alpha"),
                Value::str("alphabet"),
                Value::Null,
                Value::str("alp"),
                Value::str("alpha"),
                Value::str("alpha"),
            ],
            vec![Value::str(""), Value::Null, Value::str("zzzz")],
        ];
        assert_measures_match(DataType::Char(12), &pages);
        assert_measures_match(DataType::VarChar(12), &pages);
    }

    #[test]
    fn kernels_match_oracle_on_integers() {
        let pages = vec![
            vec![
                Value::int(0),
                Value::int(0),
                Value::int(-1),
                Value::Null,
                Value::int(i64::from(i32::MIN)),
                Value::int(i64::from(i32::MAX)),
            ],
            vec![Value::int(7), Value::int(7), Value::int(7)],
        ];
        assert_measures_match(DataType::Int32, &pages);
        let pages64 = vec![vec![
            Value::int(i64::MIN),
            Value::int(i64::MAX),
            Value::int(0),
            Value::Null,
            Value::Null,
        ]];
        assert_measures_match(DataType::Int64, &pages64);
    }

    #[test]
    fn kernels_match_oracle_on_bools_and_all_null() {
        assert_measures_match(
            DataType::Bool,
            &[vec![
                Value::Bool(true),
                Value::Bool(false),
                Value::Null,
                Value::Bool(true),
            ]],
        );
        // All-NULL pages: NULL placeholders must not leak into dictionaries
        // or prefixes as fake values.
        assert_measures_match(DataType::Char(8), &[vec![Value::Null; 5]]);
    }

    #[test]
    fn kernels_match_oracle_on_empty_chunks() {
        assert_measures_match(DataType::Char(8), &[vec![]]);
        assert_measures_match(DataType::Int64, &[]);
    }

    #[test]
    fn null_placeholder_bytes_do_not_alias_real_zeros() {
        // Int32 of i32::MIN encodes to all-zero bytes, identical to the NULL
        // placeholder.  The null flag must keep them distinct in every
        // kernel (dictionary distinctness, RLE runs, NS sizing).
        let pages = vec![vec![
            Value::int(i64::from(i32::MIN)),
            Value::Null,
            Value::int(i64::from(i32::MIN)),
            Value::Null,
        ]];
        assert_measures_match(DataType::Int32, &pages);
    }

    #[test]
    fn cell_chunk_validates_width() {
        let bytes = [0u8; 3];
        assert!(CellChunk::new(DataType::Int32, vec![CellRef::new(false, &bytes)]).is_err());
        assert!(CellChunk::new(DataType::Int32, vec![]).unwrap().is_empty());
    }
}
