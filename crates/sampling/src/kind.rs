//! Configuration-friendly sampler selection.

use crate::block::BlockSampler;
use crate::error::SamplingResult;
use crate::reservoir::ReservoirSampler;
use crate::sampler::RowSampler;
use crate::uniform::{
    BernoulliSampler, SystematicSampler, UniformWithReplacement, UniformWithoutReplacement,
};

/// An enumeration of the available sampling procedures, parameterised the way
/// an experiment configuration would describe them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplerKind {
    /// Uniform row sampling with replacement at the given fraction
    /// (the paper's assumption).
    UniformWithReplacement(f64),
    /// Uniform row sampling without replacement at the given fraction.
    UniformWithoutReplacement(f64),
    /// Bernoulli sampling with the given inclusion probability.
    Bernoulli(f64),
    /// Systematic sampling at the given fraction.
    Systematic(f64),
    /// Fixed-size reservoir sampling.
    Reservoir(usize),
    /// Page-level sampling at the given page fraction
    /// (what commercial systems actually do).
    Block(f64),
}

impl SamplerKind {
    /// Instantiate the sampler this kind describes.
    pub fn build(&self) -> SamplingResult<Box<dyn RowSampler>> {
        Ok(match *self {
            SamplerKind::UniformWithReplacement(f) => Box::new(UniformWithReplacement::new(f)?),
            SamplerKind::UniformWithoutReplacement(f) => {
                Box::new(UniformWithoutReplacement::new(f)?)
            }
            SamplerKind::Bernoulli(f) => Box::new(BernoulliSampler::new(f)?),
            SamplerKind::Systematic(f) => Box::new(SystematicSampler::new(f)?),
            SamplerKind::Reservoir(size) => Box::new(ReservoirSampler::new(size)?),
            SamplerKind::Block(f) => Box::new(BlockSampler::new(f)?),
        })
    }

    /// A short label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            SamplerKind::UniformWithReplacement(f) => format!("uniform-wr(f={f})"),
            SamplerKind::UniformWithoutReplacement(f) => format!("uniform-wor(f={f})"),
            SamplerKind::Bernoulli(f) => format!("bernoulli(p={f})"),
            SamplerKind::Systematic(f) => format!("systematic(f={f})"),
            SamplerKind::Reservoir(r) => format!("reservoir(r={r})"),
            SamplerKind::Block(f) => format!("block(f={f})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_its_sampler() {
        let cases = [
            (
                SamplerKind::UniformWithReplacement(0.1),
                "uniform-with-replacement",
            ),
            (
                SamplerKind::UniformWithoutReplacement(0.1),
                "uniform-without-replacement",
            ),
            (SamplerKind::Bernoulli(0.1), "bernoulli"),
            (SamplerKind::Systematic(0.1), "systematic"),
            (SamplerKind::Reservoir(10), "reservoir"),
            (SamplerKind::Block(0.1), "block"),
        ];
        for (kind, expected) in cases {
            assert_eq!(kind.build().unwrap().name(), expected);
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn invalid_parameters_propagate() {
        assert!(SamplerKind::UniformWithReplacement(0.0).build().is_err());
        assert!(SamplerKind::Reservoir(0).build().is_err());
        assert!(SamplerKind::Block(1.5).build().is_err());
    }
}
