//! Fault injection against a live `samplecfd`: stalled writers,
//! mid-response disconnects, garbage pipeliners, and saturation.  The
//! properties under test are the event loop's isolation guarantees — a
//! misbehaving client must not block other clients, every connection slot
//! must be reclaimed, and overload must surface as structured `busy`
//! responses rather than hangs.

use samplecf_datagen::presets;
use samplecf_server::{Json, Server, ServerConfig, ServerHandle};
use samplecf_storage::DiskTable;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A table big enough that a deep draw takes real milliseconds (the
/// saturation test needs the single worker to stay busy while requests
/// pile up behind it).
fn table_path() -> &'static PathBuf {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let generated = presets::single_char_table("fault_t", 60_000, 24, 100, 8, 31)
            .generate()
            .expect("generation succeeds");
        let path = std::env::temp_dir().join(format!(
            "samplecf_fault_injection_{}.scf",
            std::process::id()
        ));
        DiskTable::materialize(&path, &generated.table).expect("materialisation succeeds");
        path
    })
}

fn spawn_server(config: ServerConfig) -> ServerHandle {
    let handle = Server::bind("127.0.0.1:0", config).expect("bind succeeds");
    handle
        .state()
        .catalog
        .register(&table_path().to_string_lossy(), Some("t"))
        .expect("register succeeds");
    handle
}

/// One blocking request/response exchange on a fresh connection.
fn roundtrip(addr: std::net::SocketAddr, request: &str) -> Json {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer.write_all(request.as_bytes()).expect("send");
    writer.write_all(b"\n").expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("receive");
    Json::parse(line.trim()).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"))
}

fn assert_ok(reply: &Json) {
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {reply}"
    );
}

/// Poll the open-connection gauge down to `expected` — closes are
/// processed by the event loop asynchronously after a client drops.
fn await_open_connections(handle: &ServerHandle, expected: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let open = handle.state().gauges.open_connections();
        if open == expected {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "open_connections stuck at {open}, expected {expected}: leaked slots"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn a_stalled_writer_does_not_block_other_clients() {
    let handle = spawn_server(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // The staller sends half a request and then goes quiet, holding the
    // connection (and the server's partial-line buffer) open.
    let staller = TcpStream::connect(addr).expect("connect staller");
    staller
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut staller_writer = staller.try_clone().expect("clone");
    staller_writer
        .write_all(br#"{"op":"estimate","table":"t","sampler":"block","frac"#)
        .expect("send half");

    // Meanwhile every other client is served promptly.
    let started = Instant::now();
    for i in 0..20 {
        let reply = roundtrip(
            addr,
            &format!(
                r#"{{"op":"estimate","table":"t","sampler":"block","fraction":0.05,"scheme":"rle","seed":{}}}"#,
                i % 3
            ),
        );
        assert_ok(&reply);
    }
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "other clients were starved behind a stalled writer: {:?}",
        started.elapsed()
    );

    // The staller finally finishes its line and is served normally.
    staller_writer
        .write_all(b"tion\":0.05,\"scheme\":\"rle\",\"seed\":0}\n")
        .expect("send rest");
    let mut reader = BufReader::new(staller);
    let mut line = String::new();
    reader.read_line(&mut line).expect("receive");
    assert_ok(&Json::parse(line.trim()).expect("structured"));

    drop(reader);
    drop(staller_writer);
    await_open_connections(&handle, 0);
    handle.shutdown();
}

#[test]
fn disconnecting_mid_response_leaks_no_slots() {
    let handle = spawn_server(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // 30 clients fire a request and vanish without reading the response;
    // the server is left to discover the dead socket when it flushes.
    for i in 0..30 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(
                format!(
                    "{{\"op\":\"estimate\",\"table\":\"t\",\"sampler\":\"block\",\
                     \"fraction\":0.05,\"scheme\":\"rle\",\"seed\":{}}}\n",
                    i % 4
                )
                .as_bytes(),
            )
            .expect("send");
        drop(stream);
    }

    // The server still answers new clients...
    assert_ok(&roundtrip(addr, r#"{"op":"info","table":"t"}"#));
    // ...and reclaims every abandoned slot.
    await_open_connections(&handle, 0);
    assert!(handle.state().gauges.connections_accepted() >= 31);
    handle.shutdown();
}

#[test]
fn a_garbage_pipeliner_cannot_starve_others_and_gets_every_answer() {
    let handle = spawn_server(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    const GARBAGE_LINES: usize = 2_000;
    let pipeliner = TcpStream::connect(addr).expect("connect pipeliner");
    pipeliner
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let mut pipeliner_writer = pipeliner.try_clone().expect("clone");
    let flood: String = "this is not json\n".repeat(GARBAGE_LINES);
    pipeliner_writer
        .write_all(flood.as_bytes())
        .expect("send flood");

    // Cross-client latency stays bounded while the flood is in flight.
    for _ in 0..20 {
        let started = Instant::now();
        assert_ok(&roundtrip(addr, r#"{"op":"info","table":"t"}"#));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "a garbage flood starved an innocent client: {:?}",
            started.elapsed()
        );
    }

    // Back on the flooding connection: one structured parse_error per
    // line, in order, none lost.  (The loop also drains the server's
    // write backlog, releasing its pipelining backpressure.)
    let mut reader = BufReader::new(pipeliner);
    let mut line = String::new();
    for i in 0..GARBAGE_LINES {
        line.clear();
        let n = reader.read_line(&mut line).expect("read reply");
        assert!(
            n > 0,
            "connection closed after {i} of {GARBAGE_LINES} replies"
        );
        let reply = Json::parse(line.trim()).unwrap_or_else(|e| panic!("reply {i}: {e}"));
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            reply
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("parse_error"),
            "reply {i}: {reply}"
        );
    }

    drop(reader);
    drop(pipeliner_writer);
    await_open_connections(&handle, 0);
    handle.shutdown();
}

#[test]
fn the_connection_limit_answers_busy_and_frees_capacity_on_close() {
    let handle = spawn_server(ServerConfig {
        workers: 1,
        max_connections: 2,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // Fill both slots, proving admission with a served request each.
    let hold = |seed: u64| {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        writer
            .write_all(
                format!("{{\"op\":\"stats\"}}{}\n", " ".repeat(seed as usize % 2)).as_bytes(),
            )
            .expect("send");
        let mut line = String::new();
        reader.read_line(&mut line).expect("receive");
        assert_ok(&Json::parse(line.trim()).expect("structured"));
        (reader, writer)
    };
    let first = hold(1);
    let second = hold(2);

    // The third connection is told busy and closed — not silently
    // dropped, not left hanging.
    let over = TcpStream::connect(addr).expect("connect over limit");
    over.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut reader = BufReader::new(over);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read busy line");
    let reply = Json::parse(line.trim()).expect("structured");
    assert_eq!(
        reply
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("busy"),
        "over-limit connect: {reply}"
    );
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("EOF after busy");
    assert!(rest.is_empty(), "server kept talking after busy: {rest:?}");
    assert!(handle.state().gauges.connections_rejected() >= 1);

    // Closing one admitted connection frees a slot for a newcomer.
    drop(first);
    await_open_connections(&handle, 1);
    assert_ok(&roundtrip(addr, r#"{"op":"info","table":"t"}"#));

    drop(second);
    await_open_connections(&handle, 0);
    handle.shutdown();
}

#[test]
fn a_full_request_queue_answers_busy_not_deadlock() {
    // One worker, one queue slot: the third concurrent estimate in flight
    // must be refused, structurally, while the first two complete.
    let handle = spawn_server(ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let request = |seed: u64| {
        format!(
            "{{\"op\":\"estimate\",\"table\":\"t\",\"sampler\":\"block\",\
             \"fraction\":0.9,\"scheme\":\"dictionary-global\",\"seed\":{seed}}}\n"
        )
    };

    // A slow estimate occupies the worker...
    let mut conns = Vec::new();
    let connect = || {
        let s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");
        s
    };
    let mut first = connect();
    first.write_all(request(1).as_bytes()).expect("send");
    conns.push(first);
    std::thread::sleep(Duration::from_millis(30));

    // ...then three more distinct-seed estimates arrive at once.  One
    // fits the queue; at least one of the others must be told busy.
    for seed in 2..=4 {
        let mut stream = connect();
        stream.write_all(request(seed).as_bytes()).expect("send");
        conns.push(stream);
    }

    let (mut ok, mut busy) = (0usize, 0usize);
    for stream in conns {
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("receive");
        let reply = Json::parse(line.trim()).expect("structured");
        match reply.get("ok").and_then(Json::as_bool) {
            Some(true) => ok += 1,
            Some(false) => {
                assert_eq!(
                    reply
                        .get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(Json::as_str),
                    Some("busy"),
                    "only busy is an acceptable refusal here: {reply}"
                );
                busy += 1;
            }
            None => panic!("malformed reply: {reply}"),
        }
    }
    assert_eq!(ok + busy, 4, "every request must be answered");
    assert!(
        ok >= 2,
        "the worker and the queue slot must both serve: {ok} ok / {busy} busy"
    );
    assert!(
        busy >= 1,
        "overload must surface as busy, got {ok} ok / {busy} busy"
    );
    assert!(handle.state().gauges.busy_rejections() >= 1);

    await_open_connections(&handle, 0);
    handle.shutdown();
}

#[test]
fn stats_reports_the_server_gauges_live() {
    let handle = spawn_server(ServerConfig::default());
    let addr = handle.addr();

    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer.write_all(b"{\"op\":\"stats\"}\n").expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("receive");
    let reply = Json::parse(line.trim()).expect("structured");
    assert_ok(&reply);

    let stats = reply.get("stats").expect("stats body");
    let server = stats.get("server").expect("stats carries a server object");
    let field = |k: &str| {
        server
            .get(k)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("server.{k} missing in {reply}"))
    };
    // This very connection is open while the stats request is served.
    assert!(field("open_connections") >= 1);
    assert!(field("connections_accepted") >= 1);
    assert_eq!(field("max_connections"), 10_240);
    assert_eq!(field("queue_capacity"), 1_024);
    let _ = (
        field("connections_rejected"),
        field("busy_rejections"),
        field("queue_depth"),
    );

    // The cache object breaks its counters down per shard.
    let shards = stats
        .get("cache")
        .and_then(|c| c.get("shards"))
        .and_then(Json::as_array)
        .expect("stats carries cache.shards");
    assert_eq!(shards.len(), 8);

    drop((reader, writer));
    await_open_connections(&handle, 0);
    handle.shutdown();
}
