//! # samplecf-index
//!
//! B+-tree indexes and their compression, for the SampleCF reproduction.
//!
//! The SampleCF estimator's procedure (paper Figure 2) is: draw a random
//! sample of rows, *build an index on the sample*, *compress that index*, and
//! return the observed compression fraction.  This crate provides those two
//! middle steps:
//!
//! * [`IndexSpec`] / [`IndexBuilder`] / [`BTreeIndex`] — bulk-loaded B+-trees
//!   (clustered and non-clustered) over real slotted pages,
//! * [`IndexSizeReport`] — where the uncompressed index's bytes go,
//! * [`IndexSizeModel`] — the same leaf-level accounting predicted
//!   analytically from schema + row count, without building (how the
//!   advisor prices the uncompressed side of a candidate for free),
//! * [`compress_index`] / [`CompressedIndexReport`] — per-column, per-page
//!   compression of the leaf level with any
//!   [`CompressionScheme`](samplecf_compression::CompressionScheme), and the
//!   resulting compression fraction,
//! * [`measure_index`] — the zero-copy hot path: the same report computed by
//!   the batch measure kernels over cells borrowed in place from the leaf
//!   pages, without materialising a single compressed byte.
//!
//! ## Quickstart
//!
//! ```
//! use samplecf_compression::NullSuppression;
//! use samplecf_index::{compress_index, IndexBuilder, IndexSpec};
//! use samplecf_storage::{Column, DataType, Row, Schema, TableBuilder, Value};
//!
//! let schema = Schema::new(vec![Column::new("a", DataType::Char(12))])?;
//! let rows: Vec<Row> = (0..500)
//!     .map(|i| Row::new(vec![Value::str(format!("val-{:03}", i % 50))]))
//!     .collect();
//! let table = TableBuilder::new("t", schema).build_with_rows(rows)?;
//!
//! // Bulk-load a non-clustered B+-tree on column "a", then compress its
//! // leaf level with Null Suppression.
//! let spec = IndexSpec::nonclustered("idx_a", ["a"])?;
//! let index = IndexBuilder::new().build_from_table(&table, &spec)?;
//! let report = compress_index(&index, &NullSuppression)?;
//!
//! assert_eq!(index.num_entries(), 500);
//! // "val-000" stores 7 of its 12 padded bytes, so CF is well below 1.
//! assert!(report.cf() < 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod btree;
pub mod compress;
pub mod error;
pub mod size;
pub mod spec;

pub use btree::{BTreeIndex, IndexBuilder, IndexEntry, SortedRun};
pub use compress::{compress_index, measure_index, ColumnCompressionStat, CompressedIndexReport};
pub use error::{IndexError, IndexResult};
pub use size::{leaf_record_bytes, IndexSizeEstimate, IndexSizeModel, IndexSizeReport};
pub use spec::{IndexKind, IndexSpec};
