//! Property-based tests for the storage substrate: row codec round-trips,
//! slotted-page invariants, heap-file accounting, and the on-disk page
//! serialisation (round-trip equality, checksum corruption detection, and
//! schema metadata round-trips).

use proptest::prelude::*;
use samplecf_storage::{
    disk, Column, DataType, HeapFile, Page, Row, RowCodec, Schema, Value, MIN_PAGE_SIZE,
    PAGE_HEADER_SIZE, SLOT_SIZE,
};

/// A string value that survives CHAR round-trips (no trailing spaces, ASCII).
fn char_value(max_len: usize) -> impl Strategy<Value = String> {
    proptest::string::string_regex(&format!("[a-zA-Z0-9_-]{{0,{max_len}}}")).expect("valid regex")
}

fn arbitrary_schema_and_row() -> impl Strategy<Value = (Schema, Row)> {
    // Between 1 and 5 columns of mixed types.
    proptest::collection::vec(0u8..4, 1..6).prop_flat_map(|kinds| {
        let columns: Vec<Column> = kinds
            .iter()
            .enumerate()
            .map(|(i, k)| match k {
                0 => Column::nullable(format!("c{i}"), DataType::Char(24)),
                1 => Column::nullable(format!("c{i}"), DataType::Int32),
                2 => Column::nullable(format!("c{i}"), DataType::Int64),
                _ => Column::nullable(format!("c{i}"), DataType::Bool),
            })
            .collect();
        let value_strategies: Vec<BoxedStrategy<Value>> = kinds
            .iter()
            .map(|k| match k {
                0 => prop_oneof![char_value(24).prop_map(Value::Str), Just(Value::Null)].boxed(),
                1 => prop_oneof![
                    (i32::MIN..i32::MAX).prop_map(|i| Value::Int(i64::from(i))),
                    Just(Value::Null)
                ]
                .boxed(),
                2 => prop_oneof![any::<i64>().prop_map(Value::Int), Just(Value::Null)].boxed(),
                _ => prop_oneof![any::<bool>().prop_map(Value::Bool), Just(Value::Null)].boxed(),
            })
            .collect();
        (
            Just(Schema::new(columns).expect("generated schema is valid")),
            value_strategies,
        )
            .prop_map(|(schema, values)| (schema, Row::new(values)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn row_codec_roundtrips_any_valid_row((schema, row) in arbitrary_schema_and_row()) {
        let codec = RowCodec::new(schema);
        let encoded = codec.encode(&row).expect("row conforms to schema");
        prop_assert_eq!(encoded.len(), codec.record_size());
        let decoded = codec.decode(&encoded).expect("decoding succeeds");
        prop_assert_eq!(decoded, row);
    }

    #[test]
    fn char_cell_encoding_preserves_order(a in char_value(16), b in char_value(16)) {
        let dt = DataType::Char(16);
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        samplecf_storage::encode_cell(&Value::str(a.clone()), &dt, &mut ea).unwrap();
        samplecf_storage::encode_cell(&Value::str(b.clone()), &dt, &mut eb).unwrap();
        // Space-padded comparison must agree with the padded string order.
        let pa = format!("{a:<16}");
        let pb = format!("{b:<16}");
        prop_assert_eq!(ea.cmp(&eb), pa.cmp(&pb));
    }

    #[test]
    fn int_cell_encoding_preserves_order(a in any::<i64>(), b in any::<i64>()) {
        let dt = DataType::Int64;
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        samplecf_storage::encode_cell(&Value::int(a), &dt, &mut ea).unwrap();
        samplecf_storage::encode_cell(&Value::int(b), &dt, &mut eb).unwrap();
        prop_assert_eq!(ea.cmp(&eb), a.cmp(&b));
    }

    #[test]
    fn page_accounting_is_conserved(
        page_size in MIN_PAGE_SIZE..4096usize,
        records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..200)
    ) {
        let mut page = Page::new(0, page_size).unwrap();
        let mut stored = Vec::new();
        for rec in &records {
            match page.insert(rec) {
                Ok(Some(slot)) => stored.push((slot, rec.clone())),
                Ok(None) => break,
                Err(_) => {
                    // Record larger than the page payload; skip it.
                    continue;
                }
            }
        }
        // Everything stored reads back byte-identical.
        for (slot, rec) in &stored {
            prop_assert_eq!(page.get(*slot).unwrap(), rec.as_slice());
        }
        // Accounting: payload + overhead + free space == page size.
        prop_assert_eq!(
            page.payload_bytes() + page.overhead_bytes() + page.free_space(),
            page.page_size()
        );
        prop_assert_eq!(usize::from(page.slot_count()), stored.len());
        prop_assert_eq!(page.overhead_bytes(), PAGE_HEADER_SIZE + stored.len() * SLOT_SIZE);
    }

    #[test]
    fn heap_scan_returns_records_in_insertion_order(
        records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 0..300)
    ) {
        let mut heap = HeapFile::with_page_size(256).unwrap();
        let mut rids = Vec::new();
        for rec in &records {
            rids.push(heap.insert(rec).unwrap());
        }
        prop_assert_eq!(heap.num_records(), records.len());
        let scanned: Vec<Vec<u8>> = heap.scan().map(|(_, r)| r.to_vec()).collect();
        prop_assert_eq!(scanned, records.clone());
        // Rids resolve to the same bytes.
        for (rid, rec) in rids.iter().zip(&records) {
            prop_assert_eq!(heap.get(*rid).unwrap(), rec.as_slice());
        }
        // Page count is consistent with total bytes.
        prop_assert_eq!(heap.total_bytes(), heap.num_pages() * 256);
    }

    #[test]
    fn disk_page_serialization_roundtrips(
        page_size in MIN_PAGE_SIZE..4096usize,
        id in 0u32..10_000,
        records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..120)
    ) {
        let mut page = Page::new(id, page_size).unwrap();
        for rec in &records {
            match page.insert(rec) {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => continue, // record larger than the page payload
            }
        }
        let block = disk::format::encode_page(&page);
        prop_assert_eq!(block.len(), disk::DISK_PAGE_HEADER_SIZE + page_size);
        let decoded = disk::format::decode_page(id, page_size, &block).unwrap();
        // Byte-identical payload and identical record content.
        prop_assert_eq!(decoded.raw(), page.raw());
        prop_assert_eq!(decoded.slot_count(), page.slot_count());
        for slot in 0..page.slot_count() {
            prop_assert_eq!(decoded.get(slot).unwrap(), page.get(slot).unwrap());
        }
    }

    #[test]
    fn disk_page_checksum_detects_any_single_byte_corruption(
        id in 0u32..1_000,
        records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..32), 1..40),
        corrupt_pos in any::<u64>(),
        corrupt_mask in 1u8..=255
    ) {
        let page_size = 1024usize;
        let mut page = Page::new(id, page_size).unwrap();
        for rec in &records {
            if page.insert(rec).unwrap().is_none() {
                break;
            }
        }
        let block = disk::format::encode_page(&page);
        let pos = (corrupt_pos % block.len() as u64) as usize;
        let mut corrupted = block.clone();
        corrupted[pos] ^= corrupt_mask;
        prop_assert!(
            disk::format::decode_page(id, page_size, &corrupted).is_err(),
            "flipping byte {} with mask {:#04x} went unnoticed", pos, corrupt_mask
        );
        // The pristine block still decodes.
        prop_assert!(disk::format::decode_page(id, page_size, &block).is_ok());
    }

    #[test]
    fn table_meta_roundtrips_any_schema(
        kinds in proptest::collection::vec((0u8..5, 1u16..64, any::<bool>()), 1..8),
        name in char_value(20)
    ) {
        let columns: Vec<Column> = kinds
            .iter()
            .enumerate()
            .map(|(i, (k, width, nullable))| {
                let dt = match k {
                    0 => DataType::Char(*width),
                    1 => DataType::VarChar(*width),
                    2 => DataType::Int32,
                    3 => DataType::Int64,
                    _ => DataType::Bool,
                };
                if *nullable {
                    Column::nullable(format!("c{i}"), dt)
                } else {
                    Column::new(format!("c{i}"), dt)
                }
            })
            .collect();
        let schema = Schema::new(columns).unwrap();
        let meta = disk::format::encode_table_meta(&name, &schema);
        let (decoded_name, decoded_schema) = disk::format::decode_table_meta(&meta).unwrap();
        prop_assert_eq!(decoded_name, name);
        prop_assert_eq!(decoded_schema, schema);
    }

    #[test]
    fn table_roundtrips_generated_rows(
        strings in proptest::collection::vec(char_value(12), 1..100)
    ) {
        let schema = Schema::new(vec![
            Column::new("a", DataType::Char(12)),
            Column::new("id", DataType::Int64),
        ]).unwrap();
        let rows: Vec<Row> = strings
            .iter()
            .enumerate()
            .map(|(i, s)| Row::new(vec![Value::str(s.clone()), Value::int(i as i64)]))
            .collect();
        let table = samplecf_storage::TableBuilder::new("t", schema)
            .page_size(512)
            .build_with_rows(rows.clone())
            .unwrap();
        prop_assert_eq!(table.num_rows(), rows.len());
        let scanned: Vec<Row> = table.scan().map(|(_, r)| r).collect();
        prop_assert_eq!(scanned, rows);
    }
}
