//! Borrowed views over encoded rows and cells.
//!
//! The hot estimation path (read page → decode rows → measure a scheme's
//! output size) does not need owned [`Row`]s: every stored cell already sits
//! in its canonical fixed-width encoding inside the page, and that encoding
//! is injective for non-null values (see [`encode_cell`](crate::row::encode_cell)).
//! A [`CellRef`] borrows those bytes in place, and a [`RowRef`] is the
//! per-record view that hands them out — so batch kernels can compare,
//! deduplicate and size cells without materialising a single [`Value`].
//!
//! Equality of two `CellRef`s of the same column is defined as: both NULL, or
//! both non-null with byte-equal encodings.  The null flag must participate
//! because NULL cells are materialised as all-zero bytes, which collide with
//! real values (e.g. `Int32` of `i32::MIN` also encodes to all zeros); the
//! null bitmap in the record header is authoritative.

use crate::error::{StorageError, StorageResult};
use crate::row::{decode_cell, Row, RowCodec};
use crate::value::Value;
use std::hash::{Hash, Hasher};

/// A borrowed, fixed-width encoded cell plus its null flag.
#[derive(Debug, Clone, Copy)]
pub struct CellRef<'a> {
    is_null: bool,
    bytes: &'a [u8],
}

impl<'a> CellRef<'a> {
    /// Wrap a cell's encoded bytes.  `bytes` must be exactly the cell's
    /// declared uncompressed width; for NULL cells they are the all-zero
    /// placeholder the codec writes.
    #[must_use]
    pub fn new(is_null: bool, bytes: &'a [u8]) -> Self {
        CellRef { is_null, bytes }
    }

    /// Whether the cell is SQL NULL (per the record's null bitmap).
    #[must_use]
    pub fn is_null(&self) -> bool {
        self.is_null
    }

    /// The cell's fixed-width encoded bytes (all zeros for NULL cells).
    #[must_use]
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Decode the cell back into an owned [`Value`].
    pub fn to_value(&self, dt: &crate::datatype::DataType) -> StorageResult<Value> {
        if self.is_null {
            Ok(Value::Null)
        } else {
            decode_cell(self.bytes, dt)
        }
    }
}

impl PartialEq for CellRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        if self.is_null || other.is_null {
            self.is_null && other.is_null
        } else {
            self.bytes == other.bytes
        }
    }
}

impl Eq for CellRef<'_> {}

impl Hash for CellRef<'_> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // NULL cells hash alike regardless of their placeholder bytes so that
        // Hash stays consistent with Eq.
        state.write_u8(u8::from(self.is_null));
        if !self.is_null {
            self.bytes.hash(state);
        }
    }
}

/// A borrowed view over one encoded heap record.
///
/// Layout (see [`RowCodec`]): `[null bitmap][cell 0][cell 1]...` with every
/// cell at its declared fixed width, so each cell is a subslice at a
/// schema-determined offset — no decoding happens until a caller asks for a
/// [`Value`].
#[derive(Debug, Clone, Copy)]
pub struct RowRef<'a> {
    codec: &'a RowCodec,
    record: &'a [u8],
}

impl<'a> RowRef<'a> {
    /// Wrap a record, validating its length against the codec's fixed record
    /// size.
    pub fn new(codec: &'a RowCodec, record: &'a [u8]) -> StorageResult<Self> {
        if record.len() != codec.record_size() {
            return Err(StorageError::Decode(format!(
                "record length {} does not match schema record size {}",
                record.len(),
                codec.record_size()
            )));
        }
        Ok(RowRef { codec, record })
    }

    /// Number of cells.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.codec.schema().arity()
    }

    /// The raw record bytes.
    #[must_use]
    pub fn record(&self) -> &'a [u8] {
        self.record
    }

    /// Whether the cell at `idx` is NULL, per the record's null bitmap.
    #[must_use]
    pub fn is_null(&self, idx: usize) -> bool {
        self.record[idx / 8] & (1 << (idx % 8)) != 0
    }

    /// Borrow the cell at column index `idx`.
    #[must_use]
    pub fn cell(&self, idx: usize) -> CellRef<'a> {
        let offset = self.codec.cell_offset(idx);
        let width = self
            .codec
            .schema()
            .column_at(idx)
            .datatype
            .uncompressed_width();
        CellRef::new(self.is_null(idx), &self.record[offset..offset + width])
    }

    /// Decode the whole record into an owned [`Row`].
    pub fn to_row(&self) -> StorageResult<Row> {
        self.codec.decode(self.record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::schema::{Column, Schema};
    use std::collections::HashSet;

    fn codec() -> RowCodec {
        RowCodec::new(
            Schema::new(vec![
                Column::new("name", DataType::Char(8)),
                Column::nullable("qty", DataType::Int32),
                Column::new("id", DataType::Int64),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn row_ref_cells_match_decoded_values() {
        let codec = codec();
        let row = Row::new(vec![Value::str("abc"), Value::Null, Value::int(-7)]);
        let bytes = codec.encode(&row).unwrap();
        let r = RowRef::new(&codec, &bytes).unwrap();
        assert_eq!(r.arity(), 3);
        assert!(!r.is_null(0));
        assert!(r.is_null(1));
        assert_eq!(
            r.cell(0).to_value(&DataType::Char(8)).unwrap(),
            Value::str("abc")
        );
        assert_eq!(r.cell(1).to_value(&DataType::Int32).unwrap(), Value::Null);
        assert_eq!(
            r.cell(2).to_value(&DataType::Int64).unwrap(),
            Value::int(-7)
        );
        assert_eq!(r.to_row().unwrap(), row);
    }

    #[test]
    fn row_ref_rejects_wrong_length() {
        let codec = codec();
        assert!(RowRef::new(&codec, &[0u8; 3]).is_err());
    }

    #[test]
    fn null_cells_are_equal_regardless_of_placeholder_bytes() {
        let zeros = [0u8; 4];
        let junk = [9u8; 4];
        assert_eq!(CellRef::new(true, &zeros), CellRef::new(true, &junk));
        // A NULL never equals a non-null cell, even with identical bytes —
        // Int32 of i32::MIN encodes to all zeros too.
        assert_ne!(CellRef::new(true, &zeros), CellRef::new(false, &zeros));
        assert_eq!(CellRef::new(false, &zeros), CellRef::new(false, &zeros));
        assert_ne!(CellRef::new(false, &zeros), CellRef::new(false, &junk));
    }

    #[test]
    fn hash_is_consistent_with_equality() {
        let zeros = [0u8; 4];
        let junk = [9u8; 4];
        let mut set = HashSet::new();
        set.insert(CellRef::new(true, &zeros));
        // Same logical cell (NULL) with different placeholder bytes: no new entry.
        assert!(!set.insert(CellRef::new(true, &junk)));
        assert!(set.insert(CellRef::new(false, &zeros)));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn cell_equality_tracks_value_equality_through_the_codec() {
        let codec = codec();
        let a = codec
            .encode(&Row::new(vec![
                Value::str("x"),
                Value::int(5),
                Value::int(1),
            ]))
            .unwrap();
        let b = codec
            .encode(&Row::new(vec![
                Value::str("x"),
                Value::int(5),
                Value::int(2),
            ]))
            .unwrap();
        let ra = RowRef::new(&codec, &a).unwrap();
        let rb = RowRef::new(&codec, &b).unwrap();
        assert_eq!(ra.cell(0), rb.cell(0));
        assert_eq!(ra.cell(1), rb.cell(1));
        assert_ne!(ra.cell(2), rb.cell(2));
    }
}
