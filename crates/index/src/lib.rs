//! # samplecf-index
//!
//! B+-tree indexes and their compression, for the SampleCF reproduction.
//!
//! The SampleCF estimator's procedure (paper Figure 2) is: draw a random
//! sample of rows, *build an index on the sample*, *compress that index*, and
//! return the observed compression fraction.  This crate provides those two
//! middle steps:
//!
//! * [`IndexSpec`] / [`IndexBuilder`] / [`BTreeIndex`] — bulk-loaded B+-trees
//!   (clustered and non-clustered) over real slotted pages,
//! * [`IndexSizeReport`] — where the uncompressed index's bytes go,
//! * [`compress_index`] / [`CompressedIndexReport`] — per-column, per-page
//!   compression of the leaf level with any
//!   [`CompressionScheme`](samplecf_compression::CompressionScheme), and the
//!   resulting compression fraction.

pub mod btree;
pub mod compress;
pub mod error;
pub mod size;
pub mod spec;

pub use btree::{BTreeIndex, IndexBuilder, IndexEntry};
pub use compress::{compress_index, ColumnCompressionStat, CompressedIndexReport};
pub use error::{IndexError, IndexResult};
pub use size::IndexSizeReport;
pub use spec::{IndexKind, IndexSpec};
