//! Quickstart: estimate the compression fraction of an index from a sample
//! and compare it against the exact value, for each compression scheme.
//!
//! Run with: `cargo run --release --example quickstart`

use samplecf::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a synthetic table: 50k rows, one char(40) column with 1000
    //    distinct values whose actual lengths vary between 4 and 32 bytes.
    let generated =
        presets::variable_length_table("demo", 50_000, 40, 1_000, 4, 32, 42).generate()?;
    let table = generated.table;
    let truth = generated.column_stats[0].clone();
    println!(
        "table `{}`: {} rows, {} pages, column `a` has {} distinct values",
        table.name(),
        table.num_rows(),
        table.num_pages(),
        truth.distinct_values
    );

    // 2. Define the index we are thinking about compressing.
    let spec = IndexSpec::nonclustered("idx_demo_a", ["a"])?;

    // 3. For every compression scheme, compare the SampleCF estimate (1%
    //    uniform sample with replacement, as in the paper) with the exact CF.
    println!();
    println!(
        "{:<20} {:>10} {:>10} {:>12} {:>14} {:>14}",
        "scheme", "exact CF", "estimate", "ratio error", "exact (ms)", "estimate (ms)"
    );
    for name in scheme_names() {
        let scheme = scheme_by_name(name)?;
        let exact = ExactCf::new().compute(&table, &spec, scheme.as_ref())?;
        let estimate =
            SampleCf::with_fraction(0.01)
                .seed(7)
                .estimate(&table, &spec, scheme.as_ref())?;
        println!(
            "{:<20} {:>10.4} {:>10.4} {:>12.3} {:>14.2} {:>14.2}",
            name,
            exact.cf,
            estimate.cf,
            ratio_error(estimate.cf, exact.cf),
            exact.elapsed.as_secs_f64() * 1e3,
            estimate.elapsed.as_secs_f64() * 1e3,
        );
    }

    // 4. Show what the theory predicts for null suppression (Theorem 1).
    let bound = theory::ns_stddev_bound(table.num_rows(), 0.01);
    println!();
    println!(
        "Theorem 1: the standard deviation of the null-suppression estimate from a 1% sample \
         of this table is at most {bound:.5}"
    );
    Ok(())
}
