//! Uncompressed index size accounting: measured ([`IndexSizeReport`]) and
//! analytic ([`IndexSizeModel`]).
//!
//! The measured report walks a built tree.  The analytic model computes the
//! same leaf-level figures from the schema and row count alone — no index
//! build, no page reads — which is what lets the physical-design advisor
//! price the *uncompressed* side of every candidate for free (the paper's
//! point is that only the compressed side needs sampling).  Leaf records are
//! fixed-width (null bitmap + fixed cells + optional RID), and the bulk
//! loader packs them deterministically, so the model is exact: it predicts
//! the same leaf page count the builder produces.

use crate::btree::BTreeIndex;
use crate::error::{IndexError, IndexResult};
use crate::spec::{IndexKind, IndexSpec};
use samplecf_storage::{Page, Rid, Schema, DEFAULT_PAGE_SIZE, PAGE_HEADER_SIZE, SLOT_SIZE};

/// A breakdown of where an (uncompressed) index's bytes go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexSizeReport {
    /// Number of leaf entries.
    pub num_entries: usize,
    /// Number of leaf pages.
    pub leaf_pages: usize,
    /// Number of internal pages.
    pub internal_pages: usize,
    /// Tree height (1 = a single leaf level).
    pub height: usize,
    /// Page size in bytes.
    pub page_size: usize,
    /// Bytes of stored column cells across all leaf entries
    /// (the paper's `n·k` for a single `char(k)` key).
    pub stored_cell_bytes: usize,
    /// Bytes of RID pointers in leaf entries (non-clustered only).
    pub rid_bytes: usize,
    /// Bytes of null bitmaps in leaf entries.
    pub bitmap_bytes: usize,
    /// Bytes of page bookkeeping in the leaf level (headers + slot entries).
    pub leaf_overhead_bytes: usize,
    /// Unused bytes inside leaf pages (free space).
    pub leaf_free_bytes: usize,
}

impl IndexSizeReport {
    /// Measure an index.
    #[must_use]
    pub fn measure(index: &BTreeIndex) -> Self {
        let n = index.num_entries();
        let stored_cell_bytes = n * index.stored_cell_bytes_per_entry();
        let rid_bytes = if index.spec().kind() == IndexKind::NonClustered {
            n * Rid::ENCODED_LEN
        } else {
            0
        };
        let bitmap_bytes = n * index.stored_column_indexes().len().div_ceil(8);
        let leaf_overhead_bytes: usize = index.leaf_pages().iter().map(Page::overhead_bytes).sum();
        let leaf_used: usize = index
            .leaf_pages()
            .iter()
            .map(|p| p.payload_bytes() + p.overhead_bytes())
            .sum();
        let leaf_free_bytes = index.num_leaf_pages() * index.page_size() - leaf_used;
        IndexSizeReport {
            num_entries: n,
            leaf_pages: index.num_leaf_pages(),
            internal_pages: index.num_internal_pages(),
            height: index.height(),
            page_size: index.page_size(),
            stored_cell_bytes,
            rid_bytes,
            bitmap_bytes,
            leaf_overhead_bytes,
            leaf_free_bytes,
        }
    }

    /// Total on-disk bytes (all pages at full page size).
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        (self.leaf_pages + self.internal_pages) * self.page_size
    }

    /// Total leaf-level bytes (leaf pages at full page size).
    #[must_use]
    pub fn leaf_bytes(&self) -> usize {
        self.leaf_pages * self.page_size
    }

    /// Average number of entries per leaf page.
    #[must_use]
    pub fn entries_per_leaf(&self) -> f64 {
        if self.leaf_pages == 0 {
            0.0
        } else {
            self.num_entries as f64 / self.leaf_pages as f64
        }
    }

    /// Fraction of the leaf level occupied by actual column data.
    #[must_use]
    pub fn data_density(&self) -> f64 {
        if self.leaf_bytes() == 0 {
            0.0
        } else {
            self.stored_cell_bytes as f64 / self.leaf_bytes() as f64
        }
    }
}

/// Width in bytes of one uncompressed leaf record for an index described by
/// `spec` over `schema`: null bitmap + fixed-width stored cells + the RID
/// pointer (non-clustered only).  Mirrors the bulk loader's
/// `encode_leaf_record` exactly.
pub fn leaf_record_bytes(schema: &Schema, spec: &IndexSpec) -> IndexResult<usize> {
    let stored = spec.stored_column_indexes(schema)?;
    let bitmap = stored.len().div_ceil(8);
    let cells: usize = stored
        .iter()
        .map(|&i| schema.column_at(i).datatype.uncompressed_width())
        .sum();
    let rid = if spec.kind() == IndexKind::NonClustered {
        Rid::ENCODED_LEN
    } else {
        0
    };
    Ok(bitmap + cells + rid)
}

/// Analytic leaf-level size estimate (see [`IndexSizeModel::estimate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexSizeEstimate {
    /// Number of leaf entries (one per row).
    pub num_entries: usize,
    /// Width of one leaf record in bytes.
    pub entry_bytes: usize,
    /// Entries the bulk loader packs into each leaf page.
    pub entries_per_leaf: usize,
    /// Predicted number of leaf pages.
    pub leaf_pages: usize,
    /// Page size in bytes.
    pub page_size: usize,
}

impl IndexSizeEstimate {
    /// Predicted leaf-level bytes (leaf pages at full page size) — the same
    /// quantity [`IndexSizeReport::leaf_bytes`] measures on a built tree.
    #[must_use]
    pub fn leaf_bytes(&self) -> usize {
        self.leaf_pages * self.page_size
    }
}

/// Predicts leaf-level index sizes without building anything.
///
/// Configured like [`IndexBuilder`](crate::btree::IndexBuilder) (page size
/// and fill factor) and guaranteed to agree with it: for any schema, spec
/// and row count, [`estimate`](Self::estimate) returns exactly the leaf page
/// count a build of those rows would produce, because leaf records are
/// fixed-width and the loader's packing rule is deterministic.
#[derive(Debug, Clone, Copy)]
pub struct IndexSizeModel {
    page_size: usize,
    fill_factor: f64,
}

impl Default for IndexSizeModel {
    fn default() -> Self {
        IndexSizeModel {
            page_size: DEFAULT_PAGE_SIZE,
            fill_factor: 1.0,
        }
    }
}

impl IndexSizeModel {
    /// A model with the default page size and a 100% fill factor — the same
    /// defaults as `IndexBuilder::new()`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Use a custom page size.
    #[must_use]
    pub fn page_size(mut self, page_size: usize) -> Self {
        self.page_size = page_size;
        self
    }

    /// Use a custom leaf fill factor (0 < f ≤ 1).
    #[must_use]
    pub fn fill_factor(mut self, fill_factor: f64) -> Self {
        self.fill_factor = fill_factor;
        self
    }

    /// Predict the leaf-level size of an index over `num_rows` rows.
    ///
    /// # Errors
    /// Fails if the spec does not resolve against the schema, the fill
    /// factor is out of range, or one record cannot fit a page at all.
    pub fn estimate(
        &self,
        schema: &Schema,
        spec: &IndexSpec,
        num_rows: usize,
    ) -> IndexResult<IndexSizeEstimate> {
        if !(self.fill_factor > 0.0 && self.fill_factor <= 1.0) {
            return Err(IndexError::InvalidSpec(format!(
                "fill factor must be in (0, 1], got {}",
                self.fill_factor
            )));
        }
        let entry_bytes = leaf_record_bytes(schema, spec)?;
        let usable = self.page_size.saturating_sub(PAGE_HEADER_SIZE);
        let needed = entry_bytes + SLOT_SIZE;
        if needed > usable {
            return Err(IndexError::InvalidSpec(format!(
                "index entry of {entry_bytes} bytes does not fit in a {}-byte page",
                self.page_size
            )));
        }
        // The loader admits entries while used + needed <= fill-limited
        // usable space, and always places at least one per page.
        let target_fill = (usable as f64 * self.fill_factor) as usize;
        let entries_per_leaf = (target_fill / needed).max(1);
        // An empty build still produces one (empty) leaf page.
        let leaf_pages = num_rows.div_ceil(entries_per_leaf).max(1);
        Ok(IndexSizeEstimate {
            num_entries: num_rows,
            entry_bytes,
            entries_per_leaf,
            leaf_pages,
            page_size: self.page_size,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::btree::IndexBuilder;
    use crate::spec::IndexSpec;
    use samplecf_storage::{
        Column, DataType, Row, Schema, TableBuilder, Value, PAGE_HEADER_SIZE, SLOT_SIZE,
    };

    fn build(n: usize, kind_clustered: bool) -> BTreeIndex {
        let schema = Schema::new(vec![
            Column::new("a", DataType::Char(20)),
            Column::new("b", DataType::Int32),
        ])
        .unwrap();
        let table = TableBuilder::new("t", schema)
            .build_with_rows(
                (0..n)
                    .map(|i| Row::new(vec![Value::str(format!("v{i:05}")), Value::int(i as i64)])),
            )
            .unwrap();
        let spec = if kind_clustered {
            IndexSpec::clustered("i", ["a"]).unwrap()
        } else {
            IndexSpec::nonclustered("i", ["a"]).unwrap()
        };
        IndexBuilder::new()
            .page_size(1024)
            .build_from_table(&table, &spec)
            .unwrap()
    }

    #[test]
    fn nonclustered_report_accounts_for_rids() {
        let idx = build(500, false);
        let r = IndexSizeReport::measure(&idx);
        assert_eq!(r.num_entries, 500);
        assert_eq!(r.stored_cell_bytes, 500 * 20);
        assert_eq!(r.rid_bytes, 500 * Rid::ENCODED_LEN);
        assert_eq!(r.bitmap_bytes, 500);
        assert!(r.leaf_pages > 1);
        assert_eq!(r.total_bytes(), (r.leaf_pages + r.internal_pages) * 1024);
        assert!(r.entries_per_leaf() > 1.0);
        assert!(r.data_density() > 0.0 && r.data_density() < 1.0);
    }

    #[test]
    fn clustered_report_has_no_rid_bytes() {
        let idx = build(300, true);
        let r = IndexSizeReport::measure(&idx);
        assert_eq!(r.rid_bytes, 0);
        assert_eq!(r.stored_cell_bytes, 300 * 24);
    }

    #[test]
    fn leaf_accounting_is_conserved() {
        let idx = build(1000, false);
        let r = IndexSizeReport::measure(&idx);
        // data + bitmaps + rids + overhead + free == leaf bytes
        assert_eq!(
            r.stored_cell_bytes
                + r.bitmap_bytes
                + r.rid_bytes
                + r.leaf_overhead_bytes
                + r.leaf_free_bytes,
            r.leaf_bytes()
        );
        // Sanity on the overhead model.
        assert!(r.leaf_overhead_bytes >= r.leaf_pages * PAGE_HEADER_SIZE);
        assert!(r.leaf_overhead_bytes >= r.num_entries * SLOT_SIZE);
    }

    #[test]
    fn analytic_model_matches_measured_builds_exactly() {
        // Sweep shapes: row counts around page boundaries, both kinds,
        // several page sizes and fill factors, multi-column keys.
        let schema = Schema::new(vec![
            Column::new("a", DataType::Char(20)),
            Column::new("b", DataType::Int32),
        ])
        .unwrap();
        let table = TableBuilder::new("t", schema.clone())
            .build_with_rows(
                (0..2_000)
                    .map(|i| Row::new(vec![Value::str(format!("v{i:05}")), Value::int(i as i64)])),
            )
            .unwrap();
        let specs = [
            IndexSpec::nonclustered("nc", ["a"]).unwrap(),
            IndexSpec::nonclustered("nc2", ["a", "b"]).unwrap(),
            IndexSpec::clustered("cl", ["b"]).unwrap(),
        ];
        for spec in &specs {
            for page_size in [512usize, 1024, 8192] {
                for fill in [1.0, 0.7, 0.5] {
                    for n in [0usize, 1, 7, 500, 1999] {
                        let rows: Vec<_> = table.scan().take(n).collect();
                        let built = IndexBuilder::new()
                            .page_size(page_size)
                            .fill_factor(fill)
                            .build_from_rows(&schema, &rows, spec)
                            .unwrap();
                        let measured = IndexSizeReport::measure(&built);
                        let model = IndexSizeModel::new()
                            .page_size(page_size)
                            .fill_factor(fill)
                            .estimate(&schema, spec, n)
                            .unwrap();
                        assert_eq!(
                            model.leaf_pages,
                            measured.leaf_pages,
                            "{} n={n} page={page_size} fill={fill}",
                            spec.name()
                        );
                        assert_eq!(model.leaf_bytes(), measured.leaf_bytes());
                        assert_eq!(model.num_entries, measured.num_entries);
                    }
                }
            }
        }
    }

    #[test]
    fn model_rejects_bad_configs() {
        let schema = Schema::single_char("a", 200);
        let spec = IndexSpec::nonclustered("i", ["a"]).unwrap();
        assert!(IndexSizeModel::new()
            .fill_factor(0.0)
            .estimate(&schema, &spec, 10)
            .is_err());
        // A 200-byte record cannot fit a 128-byte page.
        assert!(IndexSizeModel::new()
            .page_size(128)
            .estimate(&schema, &spec, 10)
            .is_err());
        // Unknown column.
        let bad = IndexSpec::nonclustered("i", ["missing"]).unwrap();
        assert!(IndexSizeModel::new().estimate(&schema, &bad, 10).is_err());
    }

    #[test]
    fn leaf_record_bytes_accounts_for_kind() {
        let schema = Schema::new(vec![
            Column::new("a", DataType::Char(12)),
            Column::new("b", DataType::Int64),
        ])
        .unwrap();
        let nc = IndexSpec::nonclustered("nc", ["a"]).unwrap();
        let cl = IndexSpec::clustered("cl", ["a"]).unwrap();
        // nonclustered: 1-byte bitmap + 12-byte cell + 6-byte rid.
        assert_eq!(leaf_record_bytes(&schema, &nc).unwrap(), 1 + 12 + 6);
        // clustered: stores both columns, no rid.
        assert_eq!(leaf_record_bytes(&schema, &cl).unwrap(), 1 + 12 + 8);
    }

    #[test]
    fn empty_index_report() {
        let schema = Schema::single_char("a", 8);
        let spec = IndexSpec::nonclustered("i", ["a"]).unwrap();
        let idx = IndexBuilder::new()
            .build_from_rows(&schema, &[], &spec)
            .unwrap();
        let r = IndexSizeReport::measure(&idx);
        assert_eq!(r.num_entries, 0);
        assert_eq!(r.entries_per_leaf(), 0.0);
        assert_eq!(r.stored_cell_bytes, 0);
    }
}
