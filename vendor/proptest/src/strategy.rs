//! The [`Strategy`] trait and its combinators.
//!
//! A strategy is a recipe for generating values of one type.  Unlike real
//! proptest there is no value tree and no shrinking: `generate` draws a
//! value directly from the case RNG.

use crate::test_runner::TestRng;
use rand::Rng;
use std::sync::Arc;

/// A recipe for generating values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy `f`
    /// builds out of it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// Type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let intermediate = self.source.generate(rng);
        (self.f)(intermediate).generate(rng)
    }
}

/// Weighted choice between strategies of one value type (the
/// [`prop_oneof!`](crate::prop_oneof) macro builds this).
pub struct OneOf<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> OneOf<T> {
    /// Build from `(weight, strategy)` pairs.
    ///
    /// # Panics
    /// Panics if `options` is empty or all weights are zero.
    #[must_use]
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs at least one positive weight"
        );
        OneOf {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut ticket = rng.gen_range(0..self.total_weight);
        for (weight, strategy) in &self.options {
            let weight = u64::from(*weight);
            if ticket < weight {
                return strategy.generate(rng);
            }
            ticket -= weight;
        }
        unreachable!("ticket exceeds total weight")
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A);
impl_strategy_for_tuple!(A, B);
impl_strategy_for_tuple!(A, B, C);
impl_strategy_for_tuple!(A, B, C, D);
impl_strategy_for_tuple!(A, B, C, D, E);
impl_strategy_for_tuple!(A, B, C, D, E, F);

/// A `Vec` of strategies generates one value per element (fixed length,
/// heterogeneous sources) — mirrors proptest's `Vec<S>` impl.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(7)
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = rng();
        let strategy =
            (0u32..10).prop_flat_map(|n| (Just(n), 0u32..(n + 1)).prop_map(|(n, k)| (n, k)));
        for _ in 0..100 {
            let (n, k) = strategy.generate(&mut rng);
            assert!(n < 10 && k <= n);
        }
    }

    #[test]
    fn oneof_respects_zero_weight_options_mix() {
        let mut rng = rng();
        let strategy = OneOf::new(vec![(3, (0u8..1).boxed()), (1, (10u8..11).boxed())]);
        let mut saw = [false, false];
        for _ in 0..200 {
            match strategy.generate(&mut rng) {
                0 => saw[0] = true,
                10 => saw[1] = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(saw[0] && saw[1], "both branches should be exercised");
    }

    #[test]
    fn vec_of_strategies_generates_elementwise() {
        let mut rng = rng();
        let strategies: Vec<BoxedStrategy<u32>> = vec![(0u32..1).boxed(), (5u32..6).boxed()];
        assert_eq!(strategies.generate(&mut rng), vec![0, 5]);
    }
}
