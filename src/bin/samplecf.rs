//! `samplecf` — the command-line front end of the SampleCF reproduction.
//!
//! Five subcommands cover the gen → estimate → exact → advise loop over
//! disk-resident tables:
//!
//! * `gen` writes a seeded synthetic table to a `.scf` file,
//! * `estimate` runs the SampleCF estimator over it, reporting the CF
//!   estimate *and* the number of pages physically read,
//! * `exact` computes the ground-truth CF (a full scan),
//! * `advise` runs the shared-sample physical design advisor over a set of
//!   candidate indexes (text or JSON report),
//! * `info` prints the file header without touching data pages,
//! * `client` sends one protocol request to a running `samplecfd` daemon
//!   and pretty-prints the JSON reply,
//! * `top` polls a daemon's `stats` endpoint and renders a live terminal
//!   view: request rates, per-op latency quantiles, cache hit ratio and
//!   queue depth.
//!
//! Argument parsing is hand-rolled (the workspace builds offline, without
//! clap); every flag is `--name value`.

use samplecf::prelude::*;
use samplecf_sampling::CountingSource;
use samplecf_server::{table_info_json, Json};
use samplecf_storage::{DiskTable, IntoShared, TableSource};
use std::io::{BufRead, BufReader, Read, Write};
use std::process::ExitCode;
use std::time::Instant;

const HELP: &str = "samplecf — estimate index compression fractions by sampling (ICDE 2010)

USAGE:
  samplecf gen --out FILE [options]       write a synthetic table to a file
  samplecf estimate --table FILE [options]  run SampleCF over a table file
  samplecf exact --table FILE [options]   compute the exact CF (full scan)
  samplecf advise --table FILE [options]  recommend which indexes to compress
  samplecf info --table FILE [--json]     print the file header and schema
  samplecf client ADDR REQUEST            send one request to a samplecfd
  samplecf top ADDR [options]             live view of a running samplecfd

GEN OPTIONS:
  --out FILE          output path (required)
  --rows N            number of rows                     [default: 100000]
  --distinct D        distinct values in column `a`      [default: 1000]
  --width W           declared CHAR width in bytes       [default: 24]
  --len-min L         minimum value length               [default: 4]
  --len-max L         maximum value length               [default: 20]
  --page-size B       page size in bytes                 [default: 8192]
  --name NAME         table name stored in the file      [default: t]
  --seed S            RNG seed                           [default: 42]

ESTIMATE OPTIONS:
  --table FILE        table file written by `gen` (required)
  --sampler NAME      block | uniform | uniform-wor | bernoulli |
                      systematic | reservoir | stratified [default: uniform]
  --fraction F        sampling fraction in (0, 1]        [default: 0.01]
  --size R            reservoir size (reservoir sampler) [default: 1000]
  --strata K          page strata (stratified sampler)   [default: 8]
  --alloc A           prop | neyman — per-stratum budget split
                      (stratified sampler)               [default: prop]
  --strata-mode M     equi-width | equi-depth — how page ranges are cut
                      (stratified sampler)               [default: equi-width]
  --scheme NAME       none | null-suppression | dictionary-paged |
                      dictionary-global | rle | prefix   [default: null-suppression]
  --column COLS       comma-separated index key columns  [default: first column]
  --trials T          independent estimator runs         [default: 1]
  --threads W         worker threads (0 = all); fans out trials, strata
                      and the bulk-load sort; the report is byte-identical
                      at any thread count                [default: 0]
  --seed S            base RNG seed                      [default: 0]
  --json              emit the report as JSON (includes the seed used)

PROGRESSIVE ESTIMATION (adds to ESTIMATE; requires a streaming sampler —
uniform, block, reservoir or stratified):
  --target-error E    stop when the CI half-width is <= E x the estimate;
                      enables the progressive (stream-then-stop) mode
  --confidence C      confidence level 1 - delta of the CI  [default: 0.95]
  --max-fraction F    sampling-fraction cap (page budget)   [default: --fraction]
  --initial-fraction F  first checkpoint fraction           [default: 0.01]
  --growth G          geometric checkpoint growth factor    [default: 2.0]

The sample grows in geometric batches; after each batch the CF is
re-measured from the accumulated sorted run and its variance jackknifed
over the batches.  The run stops when the Chebyshev CI at the requested
confidence is tighter than --target-error, or at --max-fraction.  A run
that reaches the cap is byte-identical to a one-shot estimate at that
fraction and seed.  With --sampler stratified the CF is the weighted
per-stratum combination, the CI comes from the closed-form stratified
variance algebra instead of the jackknife, and --alloc neyman re-splits
the remaining budget toward high-variance strata after every checkpoint.

EXACT OPTIONS:
  --table FILE        table file (required)
  --scheme NAME       compression scheme                 [default: null-suppression]
  --column COLS       comma-separated index key columns  [default: first column]

ADVISE OPTIONS:
  --table FILE        table file (required)
  --candidates FILE   candidate spec file (see below); without it, one
                      candidate is built from --column/--scheme
  --column COLS       key columns of the inline candidate [default: first column]
  --scheme NAME       scheme of the inline candidate     [default: null-suppression]
  --sampler NAME      block | uniform | uniform-wor | bernoulli |
                      systematic | reservoir | stratified [default: block]
  --fraction F        sampling fraction in (0, 1]        [default: 0.01]
  --size R            reservoir size (reservoir sampler) [default: 1000]
  --strata K          page strata (stratified sampler)   [default: 8]
  --alloc A           prop | neyman (stratified sampler) [default: prop]
  --strata-mode M     equi-width | equi-depth (stratified
                      sampler)                           [default: equi-width]
  --seed S            RNG seed for the shared sample     [default: 0]
  --min-saving F      compress only if saving >= F of the
                      uncompressed size                  [default: 0.1]
  --budget BYTES      storage budget (greedy compression until it fits)
  --threads W         worker threads (0 = all); results do not depend on it
  --json              emit the plan as JSON instead of text

CANDIDATE SPEC FILE (for `advise --candidates`): one candidate per line,
`#` starts a comment.  Fields are whitespace-separated:

  <index-name> <col[,col...]> <scheme> [clustered]

e.g.   idx_a      a        dictionary-global
       pk_all     a        rle             clustered

All candidates share one materialized sample per (sampler, fraction, seed)
configuration, so k candidates cost the same source I/O as one.

INFO OPTIONS:
  --table FILE        table file (required)
  --json              emit the header as JSON — the same table-metadata
                      shape the samplecfd `info` endpoint returns

CLIENT USAGE:
  samplecf client ADDR REQUEST [--raw]

  ADDR is a samplecfd address (e.g. 127.0.0.1:7878); REQUEST is one JSON
  protocol object (see docs/API.md), or `-` to read it from stdin.  The
  reply is pretty-printed (--raw prints the single reply line verbatim).
  Exits non-zero when the server answers {\"ok\": false}.

  e.g.  samplecf client 127.0.0.1:7878 '{\"op\":\"stats\"}'

TOP OPTIONS:
  samplecf top ADDR [--interval-ms MS] [--iterations N] [--plain]

  Polls {\"op\":\"stats\"} every --interval-ms [default: 1000] and renders
  request throughput, per-op p50/p95/p99 latency, the cache hit ratio and
  queue depth.  --iterations N stops after N frames (0 = forever); --plain
  appends frames without clearing the screen (for logs and CI).

The estimate report includes `pages read`: with `--sampler block` this is
round(fraction x pages) physical page reads, while row samplers pay roughly
one page read per sampled row — the I/O gap the paper's Section II-C is
about.";

/// A `--flag value` argument list.
struct Args {
    argv: Vec<String>,
}

impl Args {
    fn new(argv: Vec<String>) -> Self {
        Args { argv }
    }

    /// Remove and return the value of `--name`, if present.
    fn opt(&mut self, name: &str) -> Result<Option<String>, String> {
        let flag = format!("--{name}");
        if let Some(i) = self.argv.iter().position(|a| *a == flag) {
            if i + 1 >= self.argv.len() {
                return Err(format!("flag {flag} expects a value"));
            }
            let value = self.argv.remove(i + 1);
            self.argv.remove(i);
            return Ok(Some(value));
        }
        Ok(None)
    }

    fn parse<T: std::str::FromStr>(&mut self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.opt(name)? {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| format!("invalid value {raw:?} for --{name}: {e}")),
        }
    }

    /// Remove a bare `--name` flag (no value), returning whether it was set.
    fn flag(&mut self, name: &str) -> bool {
        let flag = format!("--{name}");
        if let Some(i) = self.argv.iter().position(|a| *a == flag) {
            self.argv.remove(i);
            true
        } else {
            false
        }
    }

    fn require(&mut self, name: &str) -> Result<String, String> {
        self.opt(name)?
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Error out if any argument was not consumed.
    fn finish(self) -> Result<(), String> {
        if let Some(extra) = self.argv.first() {
            return Err(format!("unrecognised argument {extra:?} (see --help)"));
        }
        Ok(())
    }
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") || argv.is_empty() {
        println!("{HELP}");
        return ExitCode::SUCCESS;
    }
    let command = argv.remove(0);
    let args = Args::new(argv);
    let result = match command.as_str() {
        "gen" => cmd_gen(args),
        "estimate" => cmd_estimate(args),
        "exact" => cmd_exact(args),
        "advise" => cmd_advise(args),
        "info" => cmd_info(args),
        "client" => cmd_client(args),
        "top" => cmd_top(args),
        other => Err(format!("unknown subcommand {other:?} (see --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("samplecf {command}: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_gen(mut args: Args) -> Result<(), String> {
    let out = args.require("out")?;
    let rows: usize = args.parse("rows", 100_000)?;
    let distinct: usize = args.parse("distinct", 1_000)?;
    let width: u16 = args.parse("width", 24)?;
    let len_min: usize = args.parse("len-min", 4)?;
    let len_max: usize = args.parse("len-max", 20)?;
    let page_size: usize = args.parse("page-size", 8192)?;
    let name: String = args.parse("name", "t".to_string())?;
    let seed: u64 = args.parse("seed", 42)?;
    args.finish()?;
    if len_max > usize::from(width) {
        return Err(format!(
            "--len-max {len_max} exceeds the declared --width {width}"
        ));
    }
    if len_min > len_max {
        return Err(format!("--len-min {len_min} exceeds --len-max {len_max}"));
    }

    let started = Instant::now();
    let spec = if len_min == len_max {
        presets::single_char_table(&name, rows, width, distinct, len_min, seed)
    } else {
        presets::variable_length_table(&name, rows, width, distinct, len_min, len_max, seed)
    }
    .page_size(page_size);
    let generated = spec.generate().map_err(|e| e.to_string())?;
    let disk = DiskTable::materialize(&out, &generated.table).map_err(|e| e.to_string())?;
    let stats = generated.stats_for("a").map_err(|e| e.to_string())?;

    println!("wrote          {out}");
    println!("table          {name}");
    println!("rows           {}", disk.num_rows());
    println!("distinct (d)   {}", stats.distinct_values);
    println!("pages          {}", disk.num_pages());
    println!("page size      {} B", disk.page_size());
    println!("file size      {} B", disk.file_len());
    println!("elapsed        {:.3} s", started.elapsed().as_secs_f64());
    Ok(())
}

fn parse_sampler(
    name: &str,
    fraction: f64,
    size: usize,
    strata: usize,
    alloc: &str,
    strata_mode: &str,
) -> Result<SamplerKind, String> {
    Ok(match name {
        "uniform" | "uniform-wr" => SamplerKind::UniformWithReplacement(fraction),
        "uniform-wor" => SamplerKind::UniformWithoutReplacement(fraction),
        "bernoulli" => SamplerKind::Bernoulli(fraction),
        "systematic" => SamplerKind::Systematic(fraction),
        "reservoir" => SamplerKind::Reservoir(size),
        "block" => SamplerKind::Block(fraction),
        "stratified" => SamplerKind::Stratified {
            fraction,
            strata,
            alloc: samplecf_sampling::Allocation::by_name(alloc)?,
            mode: samplecf_sampling::StrataMode::by_name(strata_mode)?,
        },
        other => {
            return Err(format!(
                "unknown sampler {other:?} (block, uniform, uniform-wor, bernoulli, systematic, reservoir, stratified)"
            ))
        }
    })
}

fn open_table(path: &str) -> Result<DiskTable, String> {
    DiskTable::open(path).map_err(|e| format!("cannot open {path}: {e}"))
}

fn index_spec(args: &mut Args, table: &DiskTable) -> Result<IndexSpec, String> {
    let columns = match args.opt("column")? {
        Some(raw) => raw.split(',').map(str::to_string).collect(),
        None => vec![table.schema().columns()[0].name.clone()],
    };
    IndexSpec::nonclustered("idx", columns).map_err(|e| e.to_string())
}

/// Render an `Option<f64>` as JSON (null when absent or non-finite — JSON
/// has no token for an infinite CI bound, e.g. at `--confidence 1.0`).
fn json_opt(v: Option<f64>) -> String {
    v.filter(|x| x.is_finite())
        .map_or("null".to_string(), |x| format!("{x:.6}"))
}

/// The identifying fields shared by every estimate JSON report.
struct ReportContext<'a> {
    table: &'a str,
    path: &'a str,
    scheme: &'a str,
    sampler: &'a str,
    seed: u64,
}

impl ReportContext<'_> {
    /// The opening JSON fields common to both report shapes.
    fn json_header(&self) -> String {
        format!(
            "{{\n  \"table\": \"{}\",\n  \"file\": \"{}\",\n  \"sampler\": \"{}\",\n  \
             \"scheme\": \"{}\",\n  \"seed\": {},\n",
            json_escape(self.table),
            json_escape(self.path),
            json_escape(self.sampler),
            json_escape(self.scheme),
            self.seed,
        )
    }
}

fn progressive_to_json(ctx: &ReportContext<'_>, report: &ProgressiveReport) -> String {
    let mut s = ctx.json_header();
    s.push_str(&format!("  \"target_error\": {},\n", report.target_error));
    s.push_str(&format!("  \"confidence\": {},\n", report.confidence));
    s.push_str(&format!("  \"cf\": {:.6},\n", report.measurement.cf));
    let (lo, hi) = report
        .ci()
        .map_or((None, None), |(a, b)| (Some(a), Some(b)));
    s.push_str(&format!("  \"ci_low\": {},\n", json_opt(lo)));
    s.push_str(&format!("  \"ci_high\": {},\n", json_opt(hi)));
    s.push_str(&format!("  \"rows\": {},\n", report.measurement.data.rows));
    s.push_str(&format!("  \"source_rows\": {},\n", report.source_rows));
    s.push_str(&format!("  \"stopped_early\": {},\n", report.stopped_early));
    s.push_str(&format!("  \"target_met\": {},\n", report.target_met));
    s.push_str(&format!("  \"pages_read\": {},\n", report.pages_read));
    s.push_str(&format!("  \"source_pages\": {},\n", report.source_pages));
    s.push_str("  \"checkpoints\": [\n");
    for (i, c) in report.checkpoints.iter().enumerate() {
        let variance_source = c
            .variance_source
            .map_or("null".to_string(), |v| format!("\"{v}\""));
        let strata_rows = c.strata_rows.as_ref().map_or("null".to_string(), |rows| {
            let inner: Vec<String> = rows.iter().map(ToString::to_string).collect();
            format!("[{}]", inner.join(", "))
        });
        s.push_str(&format!(
            "    {{\"batch\": {}, \"rows\": {}, \"fraction\": {:.6}, \"cf\": {:.6}, \
             \"std_error\": {}, \"half_width\": {}, \"ci_low\": {}, \"ci_high\": {}, \
             \"pages_read\": {}, \"variance_source\": {}, \"strata_rows\": {}}}{}\n",
            c.batch,
            c.rows,
            c.fraction,
            c.cf,
            json_opt(c.std_error),
            json_opt(c.half_width),
            json_opt(c.ci_low),
            json_opt(c.ci_high),
            c.pages_read,
            variance_source,
            strata_rows,
            if i + 1 < report.checkpoints.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ]\n}");
    s
}

fn estimate_to_json(
    ctx: &ReportContext<'_>,
    est: &CfMeasurement,
    pages_read: u64,
    num_pages: usize,
) -> String {
    let mut s = ctx.json_header();
    s.push_str(&format!("  \"cf\": {:.6},\n", est.cf));
    s.push_str(&format!(
        "  \"cf_with_pointers\": {:.6},\n",
        est.cf_with_pointers
    ));
    s.push_str(&format!("  \"cf_pages\": {:.6},\n", est.cf_pages));
    s.push_str(&format!("  \"rows\": {},\n", est.data.rows));
    s.push_str(&format!(
        "  \"distinct_first_key\": {},\n",
        est.data.distinct_first_key
    ));
    s.push_str(&format!("  \"pages_read\": {pages_read},\n"));
    s.push_str(&format!("  \"source_pages\": {num_pages}\n"));
    s.push('}');
    s
}

fn cmd_estimate(mut args: Args) -> Result<(), String> {
    let path = args.require("table")?;
    let sampler_name: String = args.parse("sampler", "uniform".to_string())?;
    let fraction: f64 = args.parse("fraction", 0.01)?;
    let size: usize = args.parse("size", 1_000)?;
    let strata: usize = args.parse("strata", 8)?;
    let alloc: String = args.parse("alloc", "prop".to_string())?;
    let strata_mode: String = args.parse("strata-mode", "equi-width".to_string())?;
    let scheme_name: String = args.parse("scheme", "null-suppression".to_string())?;
    let trials: usize = args.parse("trials", 1)?;
    let threads: usize = args.parse("threads", 0)?;
    let seed: u64 = args.parse("seed", 0)?;
    let target_error: Option<f64> = args
        .opt("target-error")?
        .map(|v| v.parse())
        .transpose()
        .map_err(|e| format!("invalid value for --target-error: {e}"))?;
    let confidence: f64 = args.parse("confidence", 0.95)?;
    let max_fraction: f64 = args.parse("max-fraction", fraction)?;
    let initial_fraction: f64 = args.parse("initial-fraction", 0.01)?;
    let growth: f64 = args.parse("growth", 2.0)?;
    let json = args.flag("json");
    let table = open_table(&path)?;
    let spec = index_spec(&mut args, &table)?;
    args.finish()?;

    let scheme = scheme_by_name(&scheme_name).map_err(|e| e.to_string())?;
    let counting = CountingSource::new(&table);
    let num_pages = table.num_pages();
    let table_name = TableSource::name(&table).to_string();

    // The shared table/sampler/scheme/seed header of every text report.
    let print_header = |sampler_label: &str| {
        println!("table          {table_name} ({path})");
        println!("rows           {} on {num_pages} pages", table.num_rows());
        println!("sampler        {sampler_label}");
        println!("scheme         {}", scheme.name());
        println!("index key      {}", spec.key_columns().join(", "));
        println!("seed           {seed}");
    };

    if let Some(target) = target_error {
        // Progressive mode: stream batches, measure at checkpoints, stop at
        // the error target or the fraction cap.
        if trials > 1 {
            return Err(
                "--trials conflicts with --target-error: a progressive run is a single \
                 adaptive estimate (drop one of the two flags)"
                    .to_string(),
            );
        }
        let sampler = parse_sampler(
            &sampler_name,
            max_fraction,
            size,
            strata,
            &alloc,
            &strata_mode,
        )?;
        let schedule = BatchSchedule::new(initial_fraction, growth).map_err(|e| e.to_string())?;
        let config = ProgressiveConfig {
            target_error: target,
            confidence,
            schedule,
        };
        let report = ProgressiveCf::new(sampler, config)
            .seed(seed)
            .threads(threads)
            .run(&counting, &spec, scheme.as_ref())
            .map_err(|e| e.to_string())?;
        if json {
            let ctx = ReportContext {
                table: &table_name,
                path: &path,
                scheme: scheme.name(),
                sampler: &sampler.label(),
                seed,
            };
            println!("{}", progressive_to_json(&ctx, &report));
            return Ok(());
        }
        print_header(&format!("{} (progressive)", sampler.label()));
        println!(
            "target         half-width <= {:.1}% of CF at {:.0}% confidence",
            100.0 * target,
            100.0 * confidence
        );
        println!();
        println!(
            "{:>5} {:>9} {:>9} {:>9} {:>11} {:>11} {:>7}",
            "batch", "rows", "f", "CF", "ci_low", "ci_high", "pages"
        );
        for c in &report.checkpoints {
            println!(
                "{:>5} {:>9} {:>9.4} {:>9.4} {:>11} {:>11} {:>7}",
                c.batch,
                c.rows,
                c.fraction,
                c.cf,
                c.ci_low.map_or("—".to_string(), |v| format!("{v:.4}")),
                c.ci_high.map_or("—".to_string(), |v| format!("{v:.4}")),
                c.pages_read,
            );
        }
        println!();
        println!("estimated CF   {:.4}", report.measurement.cf);
        if let Some((lo, hi)) = report.ci() {
            println!(
                "  95%-style CI [{lo:.4}, {hi:.4}] (Chebyshev at {:.0}%)",
                100.0 * confidence
            );
        }
        println!(
            "stopped        {} ({})",
            if report.stopped_early {
                "early"
            } else {
                "at the fraction cap"
            },
            if report.target_met {
                "target met"
            } else {
                "target not met"
            }
        );
        println!(
            "pages read     {} of {num_pages} ({:.1}%; fixed f = {max_fraction} would read up to {})",
            report.pages_read,
            100.0 * report.pages_read as f64 / num_pages.max(1) as f64,
            (num_pages as f64 * max_fraction).round() as u64
        );
        println!(
            "elapsed        {:.3} s",
            report.measurement.elapsed.as_secs_f64()
        );
        return Ok(());
    }

    let sampler = parse_sampler(&sampler_name, fraction, size, strata, &alloc, &strata_mode)?;
    let started = Instant::now();
    if trials <= 1 {
        let est = SampleCf::new(sampler)
            .seed(seed)
            .threads(threads)
            .estimate(&counting, &spec, scheme.as_ref())
            .map_err(|e| e.to_string())?;
        if json {
            println!(
                "{}",
                estimate_to_json(
                    &ReportContext {
                        table: &table_name,
                        path: &path,
                        scheme: scheme.name(),
                        sampler: &sampler.label(),
                        seed,
                    },
                    &est,
                    counting.pages_read(),
                    num_pages,
                )
            );
            return Ok(());
        }
        print_header(&sampler.label());
        println!(
            "sampled rows   {} (d' = {})",
            est.data.rows, est.data.distinct_first_key
        );
        println!("estimated CF   {:.4}", est.cf);
        println!("  with ptrs    {:.4}", est.cf_with_pointers);
        println!("  page-level   {:.4}", est.cf_pages);
    } else {
        if json {
            return Err(
                "--json supports single runs (drop --trials or use --target-error)".to_string(),
            );
        }
        print_header(&sampler.label());
        let estimates = TrialRunner::new(TrialConfig::new(trials).base_seed(seed).threads(threads))
            .run_estimates(&counting, &spec, scheme.as_ref(), sampler)
            .map_err(|e| e.to_string())?;
        let stats = SummaryStats::from_values(&estimates)
            .ok_or_else(|| "no estimates produced".to_string())?;
        println!("trials         {trials}");
        println!("estimated CF   {:.4} (mean)", stats.mean);
        println!("  std dev      {:.4}", stats.std_dev);
        println!("  min / max    {:.4} / {:.4}", stats.min, stats.max);
    }
    let pages_read = counting.pages_read();
    let per_trial = pages_read as f64 / trials.max(1) as f64;
    println!(
        "pages read     {pages_read} of {num_pages} ({:.1}% per trial)",
        100.0 * per_trial / num_pages.max(1) as f64
    );
    println!("elapsed        {:.3} s", started.elapsed().as_secs_f64());
    Ok(())
}

fn cmd_exact(mut args: Args) -> Result<(), String> {
    let path = args.require("table")?;
    let scheme_name: String = args.parse("scheme", "null-suppression".to_string())?;
    let table = open_table(&path)?;
    let spec = index_spec(&mut args, &table)?;
    args.finish()?;

    let scheme = scheme_by_name(&scheme_name).map_err(|e| e.to_string())?;
    let counting = CountingSource::new(&table);
    let started = Instant::now();
    let exact = ExactCf::new()
        .compute(&counting, &spec, scheme.as_ref())
        .map_err(|e| e.to_string())?;

    println!("table          {} ({path})", TableSource::name(&table));
    println!(
        "rows           {} (d = {})",
        exact.data.rows, exact.data.distinct_first_key
    );
    println!("scheme         {}", scheme.name());
    println!("index key      {}", spec.key_columns().join(", "));
    println!("exact CF       {:.4}", exact.cf);
    println!("  with ptrs    {:.4}", exact.cf_with_pointers);
    println!("  page-level   {:.4}", exact.cf_pages);
    println!(
        "pages read     {} of {}",
        counting.pages_read(),
        table.num_pages()
    );
    println!("elapsed        {:.3} s", started.elapsed().as_secs_f64());
    Ok(())
}

/// One parsed candidate line: index name, key columns, scheme, kind.
struct CandidateSpec {
    spec: IndexSpec,
    scheme: Box<dyn CompressionScheme>,
}

/// Parse a candidate spec file: `<name> <col[,col...]> <scheme> [clustered]`
/// per line, `#` comments and blank lines ignored.
fn parse_candidates_file(path: &str) -> Result<Vec<CandidateSpec>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if !(3..=4).contains(&fields.len()) {
            return Err(format!(
                "{path}:{}: expected `<name> <cols> <scheme> [clustered]`, got {line:?}",
                lineno + 1
            ));
        }
        let columns: Vec<String> = fields[1].split(',').map(str::to_string).collect();
        let clustered = match fields.get(3) {
            None => false,
            Some(&"clustered") => true,
            Some(other) => {
                return Err(format!(
                    "{path}:{}: unknown modifier {other:?} (only `clustered`)",
                    lineno + 1
                ))
            }
        };
        let spec = if clustered {
            IndexSpec::clustered(fields[0], columns)
        } else {
            IndexSpec::nonclustered(fields[0], columns)
        }
        .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let scheme =
            scheme_by_name(fields[2]).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        out.push(CandidateSpec { spec, scheme });
    }
    if out.is_empty() {
        return Err(format!("{path}: no candidates found"));
    }
    Ok(out)
}

/// Escape a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn plan_to_json(table: &str, path: &str, plan: &AdvisorPlan) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"table\": \"{}\",\n", json_escape(table)));
    s.push_str(&format!("  \"file\": \"{}\",\n", json_escape(path)));
    s.push_str(&format!(
        "  \"budget_bytes\": {},\n",
        plan.budget_bytes
            .map_or("null".to_string(), |b| b.to_string())
    ));
    s.push_str(&format!("  \"fits_budget\": {},\n", plan.fits_budget()));
    s.push_str(&format!(
        "  \"total_uncompressed_bytes\": {},\n",
        plan.total_uncompressed_bytes()
    ));
    s.push_str(&format!(
        "  \"total_chosen_bytes\": {},\n",
        plan.total_chosen_bytes()
    ));
    s.push_str(&format!("  \"samples_drawn\": {},\n", plan.samples_drawn()));
    s.push_str(&format!("  \"pages_read\": {},\n", plan.pages_read()));
    s.push_str(&format!(
        "  \"naive_pages_read\": {},\n",
        plan.naive_pages_read()
    ));
    s.push_str(&format!(
        "  \"elapsed_seconds\": {:.6},\n",
        plan.elapsed.as_secs_f64()
    ));
    s.push_str("  \"groups\": [\n");
    for (i, g) in plan.groups.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"table\": \"{}\", \"sampler\": \"{}\", \"seed\": {}, \"candidates\": {}, \
             \"sample_rows\": {}, \"pages_read\": {}}}{}\n",
            json_escape(&g.table),
            json_escape(&g.sampler),
            g.seed,
            g.candidates,
            g.sample_rows,
            g.pages_read,
            if i + 1 < plan.groups.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"recommendations\": [\n");
    for (i, r) in plan.recommendations.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"index\": \"{}\", \"scheme\": \"{}\", \"uncompressed_bytes\": {}, \
             \"estimated_compressed_bytes\": {}, \"estimated_cf\": {:.6}, \
             \"sample_rows\": {}, \"group\": {}, \"compress\": {}}}{}\n",
            json_escape(&r.index),
            json_escape(&r.scheme),
            r.uncompressed_bytes,
            r.estimated_compressed_bytes,
            r.estimated_cf,
            r.sample_rows,
            r.group,
            r.compress,
            if i + 1 < plan.recommendations.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ]\n}");
    s
}

fn cmd_advise(mut args: Args) -> Result<(), String> {
    let path = args.require("table")?;
    let candidates_path = args.opt("candidates")?;
    let sampler_name: String = args.parse("sampler", "block".to_string())?;
    let fraction: f64 = args.parse("fraction", 0.01)?;
    let size: usize = args.parse("size", 1_000)?;
    let strata: usize = args.parse("strata", 8)?;
    let alloc: String = args.parse("alloc", "prop".to_string())?;
    let strata_mode: String = args.parse("strata-mode", "equi-width".to_string())?;
    let seed: u64 = args.parse("seed", 0)?;
    let min_saving: f64 = args.parse("min-saving", 0.1)?;
    let budget: Option<usize> = args
        .opt("budget")?
        .map(|b| {
            b.parse::<usize>()
                .map_err(|e| format!("invalid value {b:?} for --budget: {e}"))
        })
        .transpose()?;
    let threads: usize = args.parse("threads", 0)?;
    let json = args.flag("json");
    let table = open_table(&path)?;

    let candidate_specs: Vec<CandidateSpec> = match candidates_path {
        Some(file) => {
            args.finish()?;
            parse_candidates_file(&file)?
        }
        None => {
            let scheme_name: String = args.parse("scheme", "null-suppression".to_string())?;
            let spec = index_spec(&mut args, &table)?;
            args.finish()?;
            vec![CandidateSpec {
                spec,
                scheme: scheme_by_name(&scheme_name).map_err(|e| e.to_string())?,
            }]
        }
    };

    let sampler = parse_sampler(&sampler_name, fraction, size, strata, &alloc, &strata_mode)?;
    let advisor = CompressionAdvisor::new(AdvisorConfig {
        sampler,
        seed,
        min_saving_fraction: min_saving,
        budget_bytes: budget,
        threads,
    })
    .map_err(|e| e.to_string())?;

    let table_name = TableSource::name(&table).to_string();
    let num_rows = table.num_rows();
    let num_pages = table.num_pages();
    let shared = table.into_shared();
    let candidates: Vec<Candidate<'_>> = candidate_specs
        .iter()
        .map(|c| Candidate::new(&shared, &c.spec, c.scheme.as_ref()))
        .collect();
    let plan = advisor.plan(&candidates).map_err(|e| e.to_string())?;
    if json {
        println!("{}", plan_to_json(&table_name, &path, &plan));
        return Ok(());
    }

    println!("table          {table_name} ({path})");
    println!("rows           {num_rows} on {num_pages} pages");
    println!("sampler        {}", sampler.label());
    println!("candidates     {}", plan.recommendations.len());
    println!();
    println!(
        "{:<20} {:<18} {:>14} {:>16} {:>8} {:>10}",
        "index", "scheme", "uncompressed", "est. compressed", "CF", "compress?"
    );
    for r in &plan.recommendations {
        println!(
            "{:<20} {:<18} {:>14} {:>16} {:>8.4} {:>10}",
            r.index,
            r.scheme,
            r.uncompressed_bytes,
            r.estimated_compressed_bytes,
            r.estimated_cf,
            if r.compress { "yes" } else { "no" }
        );
    }
    println!();
    println!(
        "total          {} B uncompressed -> {} B chosen{}",
        plan.total_uncompressed_bytes(),
        plan.total_chosen_bytes(),
        plan.budget_bytes.map_or(String::new(), |b| format!(
            " (budget {b} B, fits: {})",
            if plan.fits_budget() { "yes" } else { "no" }
        ))
    );
    println!(
        "samples drawn  {} ({} rows total)",
        plan.samples_drawn(),
        plan.groups.iter().map(|g| g.sample_rows).sum::<usize>()
    );
    println!(
        "pages read     {} of {num_pages} (naive re-sample-per-candidate: {})",
        plan.pages_read(),
        plan.naive_pages_read()
    );
    println!("elapsed        {:.3} s", plan.elapsed.as_secs_f64());
    Ok(())
}

fn cmd_client(mut args: Args) -> Result<(), String> {
    let raw = args.flag("raw");
    // Positional arguments: the daemon address, then the request.
    if args.argv.len() != 2 {
        return Err(format!(
            "expected `client ADDR REQUEST`, got {} argument(s) (see --help)",
            args.argv.len()
        ));
    }
    let request = args.argv.pop().expect("length checked");
    let addr = args.argv.pop().expect("length checked");

    let request = if request == "-" {
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .map_err(|e| format!("cannot read request from stdin: {e}"))?;
        buffer
    } else {
        request
    };
    // Validate locally so a typo fails fast with a position, not a server
    // round trip — and so the line sent is guaranteed newline-free.
    let request = Json::parse(request.trim())
        .map_err(|e| format!("request is not valid JSON: {e}"))?
        .to_line();

    let mut stream = std::net::TcpStream::connect(&addr)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .write_all(request.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .map_err(|e| format!("cannot send request: {e}"))?;
    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .map_err(|e| format!("cannot read reply: {e}"))?;
    if reply.trim().is_empty() {
        return Err("connection closed without a reply".to_string());
    }
    let parsed = Json::parse(reply.trim()).map_err(|e| format!("server sent invalid JSON: {e}"))?;
    if raw {
        println!("{}", reply.trim());
    } else {
        println!("{}", parsed.pretty());
    }
    match parsed.get("ok").and_then(Json::as_bool) {
        Some(true) => Ok(()),
        _ => Err("server reported an error (see reply above)".to_string()),
    }
}

/// One round trip: send `{"op":"stats"}`, return the `stats` object.
fn fetch_stats(addr: &str) -> Result<Json, String> {
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .write_all(b"{\"op\":\"stats\"}\n")
        .map_err(|e| format!("cannot send stats request: {e}"))?;
    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .map_err(|e| format!("cannot read stats reply: {e}"))?;
    let parsed = Json::parse(reply.trim()).map_err(|e| format!("server sent invalid JSON: {e}"))?;
    if parsed.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!("server reported an error: {}", reply.trim()));
    }
    parsed
        .get("stats")
        .cloned()
        .ok_or_else(|| "stats reply has no \"stats\" object".to_string())
}

fn top_u64(stats: &Json, path: &[&str]) -> u64 {
    let mut node = stats;
    for key in path {
        match node.get(key) {
            Some(next) => node = next,
            None => return 0,
        }
    }
    node.as_u64().unwrap_or(0)
}

fn cmd_top(mut args: Args) -> Result<(), String> {
    let plain = args.flag("plain");
    let interval_ms: u64 = args.parse("interval-ms", 1_000)?;
    let iterations: u64 = args.parse("iterations", 0)?;
    if args.argv.len() != 1 {
        return Err(format!(
            "expected `top ADDR`, got {} argument(s) (see --help)",
            args.argv.len()
        ));
    }
    let addr = args.argv.pop().expect("length checked");

    // (uptime, total requests) of the previous frame, for the rate.
    let mut previous: Option<(f64, u64)> = None;
    let mut frame = 0u64;
    loop {
        let stats = fetch_stats(&addr)?;
        let uptime = stats
            .get("uptime_seconds")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let total = top_u64(&stats, &["requests", "total"]);
        let rps = match previous {
            Some((prev_uptime, prev_total)) if uptime > prev_uptime => {
                (total.saturating_sub(prev_total)) as f64 / (uptime - prev_uptime)
            }
            _ => 0.0,
        };
        previous = Some((uptime, total));

        if !plain {
            // Clear the screen and home the cursor, terminal-agnostic.
            print!("\x1b[2J\x1b[H");
        }
        println!("samplecf top — {addr}   uptime {uptime:.1}s");
        let tables = stats
            .get("tables")
            .and_then(Json::as_array)
            .map_or(0, <[Json]>::len);
        println!(
            "requests  {total} total   {rps:7.1} req/s   errors {}   tables {tables}",
            top_u64(&stats, &["errors"]),
        );

        let hits = top_u64(&stats, &["cache", "hits"]);
        let misses = top_u64(&stats, &["cache", "misses"]);
        let lookups = hits + misses;
        let hit_ratio = if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64 * 100.0
        };
        println!(
            "cache     {hit_ratio:5.1}% hit ({hits}/{lookups})   {} B in {} entries   {} evictions",
            top_u64(&stats, &["cache", "bytes"]),
            top_u64(&stats, &["cache", "entries"]),
            top_u64(&stats, &["cache", "evictions"]),
        );
        println!(
            "queue     depth {} (max {} / cap {})   conns {} open / {} accepted / {} busy-rejected",
            top_u64(&stats, &["server", "queue_depth"]),
            top_u64(&stats, &["server", "queue_depth_max"]),
            top_u64(&stats, &["server", "queue_capacity"]),
            top_u64(&stats, &["server", "open_connections"]),
            top_u64(&stats, &["server", "connections_accepted"]),
            top_u64(&stats, &["server", "busy_rejections"]),
        );

        println!("latency             count      p50      p95      p99");
        if let Some(Json::Obj(kinds)) = stats.get("latency") {
            for (op, quantiles) in kinds {
                let ms = |key: &str| top_u64(quantiles, &[key]) as f64 / 1e6;
                println!(
                    "  {op:<18}{count:>6}{p50:>8.2}ms{p95:>8.2}ms{p99:>8.2}ms",
                    count = top_u64(quantiles, &["count"]),
                    p50 = ms("p50_ns"),
                    p95 = ms("p95_ns"),
                    p99 = ms("p99_ns"),
                );
            }
        }
        if plain {
            println!();
        }

        frame += 1;
        if iterations > 0 && frame >= iterations {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(10)));
    }
}

fn cmd_info(mut args: Args) -> Result<(), String> {
    let path = args.require("table")?;
    let json = args.flag("json");
    args.finish()?;
    let table = open_table(&path)?;
    if json {
        // The exact table-metadata shape samplecfd's `info` endpoint
        // returns, so local files and cataloged tables read the same.
        println!("{}", table_info_json(&table, &path).pretty());
        return Ok(());
    }
    println!("file           {path}");
    println!(
        "format         SCF1 v{}",
        samplecf_storage::disk::FORMAT_VERSION
    );
    println!("table          {}", TableSource::name(&table));
    println!("rows           {}", table.num_rows());
    println!("pages          {}", table.num_pages());
    println!("page size      {} B", table.page_size());
    println!("rows per page  {}", table.rows_per_page());
    println!("file size      {} B", table.file_len());
    println!("schema:");
    for col in table.schema().columns() {
        println!("  {col}");
    }
    Ok(())
}
