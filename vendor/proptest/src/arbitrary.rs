//! [`Arbitrary`] and [`any`] for primitive types.
//!
//! Draws are uniform over the whole domain, except that one draw in eight
//! picks from the type's edge set (`MIN`, `MAX`, `0`, `1`, …) — without
//! shrinking, biasing toward boundaries is what keeps boundary bugs findable.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// A strategy generating any value of `T`: `any::<i64>()`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                if rng.gen_range(0u32..8) == 0 {
                    const EDGES: [$t; 5] = [<$t>::MIN, <$t>::MAX, 0, 1, <$t>::MAX / 2];
                    EDGES[rng.gen_range(0..EDGES.len())]
                } else {
                    rng.gen::<$t>()
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        if rng.gen_range(0u32..8) == 0 {
            const EDGES: [f64; 5] = [0.0, -0.0, 1.0, f64::MAX, f64::MIN_POSITIVE];
            EDGES[rng.gen_range(0..EDGES.len())]
        } else {
            // Uniform in a wide symmetric range; NaN/infinities are excluded
            // (the workspace compares generated floats).
            (rng.gen::<f64>() - 0.5) * 2e12
        }
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text valid for CHAR columns.
        char::from(rng.gen_range(0x20u8..0x7F))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_i64_hits_edges_and_interior() {
        let mut rng = TestRng::seed_from_u64(11);
        let strategy = any::<i64>();
        let mut saw_edge = false;
        let mut saw_interior = false;
        for _ in 0..500 {
            let v = strategy.generate(&mut rng);
            if v == i64::MIN || v == i64::MAX {
                saw_edge = true;
            } else if v != 0 && v != 1 {
                saw_interior = true;
            }
        }
        assert!(saw_edge && saw_interior);
    }
}
