//! # samplecf-core
//!
//! The SampleCF estimator and its accuracy analysis — a reproduction of
//! *"Estimating the Compression Fraction of an Index using Sampling"*
//! (Idreos, Kaushik, Narasayya, Ramamurthy — ICDE 2010).
//!
//! The central API is [`SampleCf`]: draw a random sample of rows, build the
//! requested index on the sample, compress it with the actual compression
//! scheme, and return the sample's compression fraction as the estimate of
//! the full index's compression fraction.  [`ExactCf`] computes the expensive
//! ground truth for comparison.
//!
//! Around the estimator this crate provides everything the paper's analysis
//! and evaluation need:
//!
//! * [`theory`] — Theorem 1 (unbiasedness and the `1/(2√r)` standard
//!   deviation bound for null suppression) and the expected-error model for
//!   dictionary compression in the small-`d` (Theorem 2) and large-`d`
//!   (Theorem 3) regimes,
//! * [`metrics`] — the ratio-error metric and summary statistics,
//! * [`trials`] — a parallel repeated-trial runner that measures bias,
//!   variance and ratio errors empirically,
//! * [`distinct`] — classical distinct-value estimators (GEE, Chao84,
//!   Shlosser, naive scale-up) used as baselines against SampleCF for
//!   dictionary compression,
//! * [`advisor`] / [`capacity`] — the two applications the paper motivates:
//!   compression-aware physical design and capacity planning.  The advisor
//!   is a batch planner built on [`cache::SampleCache`]: candidates grouped
//!   by (table, sampler, seed) share one materialized sample, so a
//!   disk-resident table pays its sampling I/O once per group however many
//!   candidates are evaluated.
//!
//! ## Quickstart
//!
//! ```
//! use samplecf_compression::NullSuppression;
//! use samplecf_core::{ratio_error, ExactCf, SampleCf};
//! use samplecf_datagen::presets;
//! use samplecf_index::IndexSpec;
//!
//! let table = presets::variable_length_table("t", 10_000, 40, 200, 4, 32, 7)
//!     .generate()?
//!     .table;
//! let spec = IndexSpec::nonclustered("idx_a", ["a"])?;
//!
//! // Estimate the compression fraction from a 1% sample...
//! let estimate = SampleCf::with_fraction(0.01)
//!     .seed(42)
//!     .estimate(&table, &spec, &NullSuppression)?;
//! // ...and compare with the exact value from compressing the full index.
//! let exact = ExactCf::new().compute(&table, &spec, &NullSuppression)?;
//!
//! assert!(ratio_error(estimate.cf, exact.cf) < 1.1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod advisor;
pub mod algebra;
pub mod cache;
pub mod capacity;
pub mod distinct;
pub mod error;
pub mod estimator;
pub mod metrics;
mod parallel;
pub mod progressive;
pub mod theory;
pub mod trials;

pub use advisor::{
    decide, evaluate_shared, AdvisorConfig, AdvisorMetrics, AdvisorPlan, Candidate,
    CompressionAdvisor, Recommendation, SampleGroup,
};
pub use algebra::{ns_row_statistic, weighted_combine, MomentSketch, VarianceNode};
pub use cache::{CachedSample, SampleCache};
pub use capacity::{CapacityPlan, CapacityPlanner, ObjectEstimate, PlannedObject};
pub use distinct::{
    all_estimators, Chao84, DistinctEstimator, FrequencyHistogram, GuaranteedErrorEstimator,
    NaiveScaleUp, SampleDistinct, Shlosser,
};
pub use error::{CoreError, CoreResult};
pub use estimator::{
    measure_records, measure_records_stratified, measure_rows, measure_rows_stratified,
    CfMeasurement, DataStats, DataStatsAccumulator, ExactCf, SampleCf, StrataAssignment,
};
pub use metrics::{
    absolute_error, grouped_jackknife_variance, ratio_error, relative_error, SummaryStats,
};
pub use progressive::{
    CfCheckpoint, ProgressiveCf, ProgressiveConfig, ProgressiveMetrics, ProgressiveReport,
};
pub use trials::{TrialConfig, TrialRunner, TrialSummary};
