//! Criterion benchmarks for the timing claims in the paper's motivation:
//! SampleCF must be far cheaper than compressing the full index, and the cost
//! of the substrate operations (compression codecs, sampling, index build)
//! must scale the way the analysis assumes.
//!
//! Groups:
//! * `samplecf_vs_exact` — the headline comparison: estimating CF from a 1%
//!   sample vs. building and compressing the whole index.
//! * `progressive_vs_oneshot` — the sequential-estimation claim: an adaptive
//!   run with a 10% error target vs the fixed `f = 0.1` one-shot draw, on a
//!   low-variance table where early stopping pays and on a spread table
//!   where it must work for its answer.
//! * `compression_throughput` — per-scheme chunk compression cost.
//! * `sampling_throughput` — per-sampler cost of drawing a 1% sample.
//! * `index_build` — bulk-loading the B+-tree at several table sizes.
//! * `kernels` — the zero-copy measure path: sizing a sample index's
//!   compression without materialising it vs producing the bytes, and the
//!   borrowed-record bulk load vs the owned-row one.
//! * `bulkload` — the parallel radix bulk load at 1/2/4/all threads over
//!   the same borrowed records (byte-identical output at every count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use samplecf_bench::paper_table;
use samplecf_compression::{scheme_by_name, scheme_names, ColumnChunk, NullSuppression};
use samplecf_core::{ExactCf, ProgressiveCf, ProgressiveConfig, SampleCf};
use samplecf_datagen::presets;
use samplecf_index::{compress_index, measure_index, IndexBuilder, IndexSpec};
use samplecf_sampling::{MaterializedSample, SamplerKind};
use samplecf_storage::{DataType, Value};
use std::hint::black_box;

const WIDTH: u16 = 40;

fn spec() -> IndexSpec {
    IndexSpec::nonclustered("idx_a", ["a"]).expect("valid spec")
}

fn bench_samplecf_vs_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("samplecf_vs_exact");
    group.sample_size(10);
    for &n in &[20_000usize, 60_000] {
        let generated = paper_table(n, WIDTH, n / 10, 1);
        let table = generated.table;
        for scheme_name in ["null-suppression", "dictionary-paged"] {
            let scheme = scheme_by_name(scheme_name).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("exact/{scheme_name}"), n),
                &table,
                |b, t| {
                    b.iter(|| {
                        black_box(
                            ExactCf::new()
                                .compute(t, &spec(), scheme.as_ref())
                                .unwrap()
                                .cf,
                        )
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("samplecf_1pct/{scheme_name}"), n),
                &table,
                |b, t| {
                    b.iter(|| {
                        black_box(
                            SampleCf::with_fraction(0.01)
                                .seed(7)
                                .estimate(t, &spec(), scheme.as_ref())
                                .unwrap()
                                .cf,
                        )
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_progressive_vs_oneshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("progressive_vs_oneshot");
    group.sample_size(10);
    let tables = [
        (
            "all_equal",
            presets::constant_table("const", 60_000, 24, 8, 1)
                .generate()
                .expect("generation succeeds")
                .table,
        ),
        (
            "spread",
            presets::variable_length_table("spread", 60_000, WIDTH, 6_000, 4, 36, 2)
                .generate()
                .expect("generation succeeds")
                .table,
        ),
    ];
    for (label, table) in &tables {
        group.bench_with_input(BenchmarkId::new("oneshot_f10pct", label), table, |b, t| {
            b.iter(|| {
                black_box(
                    SampleCf::new(SamplerKind::UniformWithReplacement(0.1))
                        .seed(7)
                        .estimate(t, &spec(), &NullSuppression)
                        .unwrap()
                        .cf,
                )
            });
        });
        group.bench_with_input(
            BenchmarkId::new("adaptive_target10pct", label),
            table,
            |b, t| {
                b.iter(|| {
                    black_box(
                        ProgressiveCf::new(
                            SamplerKind::UniformWithReplacement(0.1),
                            ProgressiveConfig::default(),
                        )
                        .seed(7)
                        .run(t, &spec(), &NullSuppression)
                        .unwrap()
                        .measurement
                        .cf,
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_compression_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("compression_throughput");
    let values: Vec<Value> = (0..2_000)
        .map(|i| Value::str(format!("value-{:06}", i % 200)))
        .collect();
    let chunk = ColumnChunk::new(DataType::Char(WIDTH), values).unwrap();
    group.throughput(Throughput::Bytes(chunk.uncompressed_bytes() as u64));
    for name in scheme_names() {
        let scheme = scheme_by_name(name).unwrap();
        group.bench_function(BenchmarkId::new("compress_chunk", name), |b| {
            b.iter(|| black_box(scheme.compress_chunk(&chunk).unwrap().compressed_bytes()));
        });
        let compressed = scheme.compress_chunk(&chunk).unwrap();
        group.bench_function(BenchmarkId::new("decompress_chunk", name), |b| {
            b.iter(|| {
                black_box(
                    scheme
                        .decompress_chunk(&compressed, DataType::Char(WIDTH))
                        .unwrap()
                        .len(),
                )
            });
        });
    }
    group.finish();
}

fn bench_sampling_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling_throughput");
    group.sample_size(20);
    let generated = paper_table(100_000, WIDTH, 5_000, 2);
    let table = generated.table;
    let kinds = [
        SamplerKind::UniformWithReplacement(0.01),
        SamplerKind::UniformWithoutReplacement(0.01),
        SamplerKind::Bernoulli(0.01),
        SamplerKind::Systematic(0.01),
        SamplerKind::Reservoir(1_000),
        SamplerKind::Block(0.01),
    ];
    for kind in kinds {
        let sampler = kind.build().unwrap();
        group.bench_function(
            BenchmarkId::new("sample_1pct_of_100k", sampler.name()),
            |b| {
                b.iter(|| {
                    use rand::SeedableRng;
                    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
                    black_box(sampler.sample(&table, &mut rng).unwrap().len())
                });
            },
        );
    }
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for &n in &[10_000usize, 50_000] {
        let generated = paper_table(n, WIDTH, n / 10, 3);
        let table = generated.table;
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("bulk_load_nonclustered", n),
            &table,
            |b, t| {
                b.iter(|| {
                    black_box(
                        IndexBuilder::new()
                            .build_from_table(t, &spec())
                            .unwrap()
                            .num_leaf_pages(),
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(20);
    let n = 40_000;
    let table = presets::variable_length_table("kern", n, WIDTH, n / 50, 4, 36, 9)
        .generate()
        .expect("generation succeeds")
        .table;
    let sample = MaterializedSample::draw(&table, SamplerKind::UniformWithReplacement(0.25), 41)
        .expect("sampling succeeds");
    let schema = sample.table().schema();
    let builder = IndexBuilder::new();
    let records = sample.records().expect("borrowing the sample succeeds");
    let index = builder
        .build_from_records(schema, &records, &spec())
        .expect("record build succeeds");
    group.throughput(Throughput::Elements(sample.table().num_rows() as u64));
    for name in ["null-suppression", "dictionary-paged", "rle"] {
        let scheme = scheme_by_name(name).unwrap();
        group.bench_function(BenchmarkId::new("compress_index", name), |b| {
            b.iter(|| {
                black_box(
                    compress_index(&index, scheme.as_ref())
                        .unwrap()
                        .compressed_data_bytes(),
                )
            });
        });
        group.bench_function(BenchmarkId::new("measure_index", name), |b| {
            b.iter(|| {
                black_box(
                    measure_index(&index, scheme.as_ref())
                        .unwrap()
                        .compressed_data_bytes(),
                )
            });
        });
    }
    group.bench_function("build_from_rows", |b| {
        b.iter(|| {
            let rows = sample.rows().unwrap();
            black_box(
                IndexBuilder::new()
                    .build_from_rows(schema, &rows, &spec())
                    .unwrap()
                    .num_leaf_pages(),
            )
        });
    });
    group.bench_function("build_from_records", |b| {
        b.iter(|| {
            let records = sample.records().unwrap();
            black_box(
                IndexBuilder::new()
                    .build_from_records(schema, &records, &spec())
                    .unwrap()
                    .num_leaf_pages(),
            )
        });
    });
    group.finish();
}

fn bench_bulkload(c: &mut Criterion) {
    let mut group = c.benchmark_group("bulkload");
    group.sample_size(20);
    let n = 40_000;
    let table = presets::variable_length_table("bulk", n, WIDTH, n / 50, 4, 36, 9)
        .generate()
        .expect("generation succeeds")
        .table;
    let sample = MaterializedSample::draw(&table, SamplerKind::UniformWithReplacement(0.5), 41)
        .expect("sampling succeeds");
    let schema = sample.table().schema();
    let records = sample.records().expect("borrowing the sample succeeds");
    group.throughput(Throughput::Elements(records.len() as u64));
    // 0 = all cores; every variant produces byte-identical trees, so the
    // comparison is pure build throughput.
    for threads in [1usize, 2, 4, 0] {
        let builder = IndexBuilder::new().threads(threads);
        group.bench_function(BenchmarkId::new("radix_build", threads), |b| {
            b.iter(|| {
                black_box(
                    builder
                        .build_from_records(schema, &records, &spec())
                        .unwrap()
                        .num_leaf_pages(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_samplecf_vs_exact,
    bench_progressive_vs_oneshot,
    bench_compression_throughput,
    bench_sampling_throughput,
    bench_index_build,
    bench_kernels,
    bench_bulkload
);
criterion_main!(benches);
