//! Property-based parity tests for progressive estimation.
//!
//! The refactor's central promise: a `ProgressiveCf` run that stops at
//! exactly fraction `f` (early stopping disabled, cap at `f`) is
//! **byte-identical** — CF (all three variants), `DataStats`, the full
//! per-column report, and physical pages read — to the one-shot
//! `SampleCf` at `f`, for every streaming sampler, over both the
//! in-memory and the disk-backed table sources.  Prefix-stable streams
//! and the schedule-independent page-coalesced fetch are what make this
//! hold however the progressive run batches its draw.

use proptest::prelude::*;
use samplecf_compression::scheme_by_name;
use samplecf_core::{ProgressiveCf, ProgressiveConfig, SampleCf};
use samplecf_datagen::presets;
use samplecf_index::IndexSpec;
use samplecf_sampling::{BatchSchedule, CountingSource, SamplerKind};
use samplecf_storage::{DiskTable, Table, TableSource};

/// A disk copy of `table` in a unique temp file, removed on drop.
struct TempDisk {
    path: std::path::PathBuf,
    disk: Option<DiskTable>,
}

impl TempDisk {
    fn materialize(table: &Table, tag: u64) -> TempDisk {
        let path = std::env::temp_dir().join(format!(
            "samplecf_proptest_prog_{}_{tag}.scf",
            std::process::id()
        ));
        let disk = DiskTable::materialize(&path, table).expect("materialisation succeeds");
        TempDisk {
            path,
            disk: Some(disk),
        }
    }

    fn source(&self) -> &dyn TableSource {
        self.disk.as_ref().expect("open")
    }
}

impl Drop for TempDisk {
    fn drop(&mut self) {
        self.disk = None;
        let _ = std::fs::remove_file(&self.path);
    }
}

proptest! {
    // Each case draws a table, materialises it to disk, and runs six
    // estimator pairs (3 samplers x 2 backends): keep the case count
    // moderate so the suite stays in CI budget.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn progressive_at_fraction_f_is_byte_identical_to_one_shot(
        rows in 400usize..1600,
        distinct in 1usize..200,
        seed in 0u64..1000,
        // The vendored proptest only generates integer ranges; derive the
        // real-valued knobs from them.
        fraction_pct in 2u32..30,          // fraction in [0.02, 0.30)
        scheme_name in prop_oneof![
            Just("null-suppression"),
            Just("dictionary-global"),
            Just("rle"),
        ],
        initial_permille in 2u32..50,      // initial fraction in [0.002, 0.050)
        growth_tenths in 13u32..30,        // growth in [1.3, 3.0)
    ) {
        let fraction = f64::from(fraction_pct) / 100.0;
        let initial = f64::from(initial_permille) / 1000.0;
        let growth = f64::from(growth_tenths) / 10.0;
        let table = presets::variable_length_table("t", rows, 24, distinct, 4, 20, seed)
            .generate()
            .expect("generation succeeds")
            .table;
        let disk = TempDisk::materialize(&table, seed.wrapping_mul(31).wrapping_add(rows as u64));
        let spec = IndexSpec::nonclustered("idx_a", ["a"]).expect("valid spec");
        let scheme = scheme_by_name(scheme_name).expect("known scheme");
        let schedule = BatchSchedule::new(initial, growth).expect("valid schedule");

        let memory: &dyn TableSource = &table;
        let backends: [(&str, &dyn TableSource); 2] = [("memory", memory), ("disk", disk.source())];
        for (backend, source) in backends {
            for kind in [
                SamplerKind::UniformWithReplacement(fraction),
                SamplerKind::Block(fraction),
                SamplerKind::Reservoir((rows / 20).max(5)),
            ] {
                // One-shot draw at fraction f, pages counted.
                let oneshot_counting = CountingSource::new(source);
                let oneshot = SampleCf::new(kind)
                    .seed(seed)
                    .estimate(&oneshot_counting, &spec, scheme.as_ref())
                    .expect("one-shot estimate succeeds");
                let oneshot_pages = oneshot_counting.pages_read();

                // Progressive run: early stopping disabled, so it stops at
                // exactly fraction f — in several batches of the drawn
                // schedule, not one.
                let prog_counting = CountingSource::new(source);
                let progressive = ProgressiveCf::new(
                    kind,
                    ProgressiveConfig {
                        target_error: 0.0,
                        confidence: 0.95,
                        schedule,
                    },
                )
                .seed(seed)
                .run(&prog_counting, &spec, scheme.as_ref())
                .expect("progressive run succeeds");

                let tag = format!("{backend}/{kind:?}/{scheme_name}");
                prop_assert_eq!(progressive.measurement.cf, oneshot.cf, "cf: {}", &tag);
                prop_assert_eq!(
                    progressive.measurement.cf_with_pointers,
                    oneshot.cf_with_pointers,
                    "cf_with_pointers: {}",
                    &tag
                );
                prop_assert_eq!(
                    progressive.measurement.cf_pages,
                    oneshot.cf_pages,
                    "cf_pages: {}",
                    &tag
                );
                prop_assert_eq!(
                    &progressive.measurement.data,
                    &oneshot.data,
                    "data stats: {}",
                    &tag
                );
                prop_assert_eq!(
                    &progressive.measurement.report.per_column,
                    &oneshot.report.per_column,
                    "per-column report: {}",
                    &tag
                );
                prop_assert_eq!(
                    &progressive.measurement.sampler,
                    &oneshot.sampler,
                    "sampler label: {}",
                    &tag
                );
                prop_assert_eq!(
                    prog_counting.pages_read(),
                    oneshot_pages,
                    "pages read: {}",
                    &tag
                );
                prop_assert_eq!(progressive.pages_read, oneshot_pages, "report pages: {}", &tag);
            }
        }
    }

    #[test]
    fn disk_and_memory_backends_agree_seed_for_seed(
        rows in 400usize..1200,
        seed in 0u64..500,
        fraction_pct in 5u32..25,
    ) {
        let fraction = f64::from(fraction_pct) / 100.0;
        // The progressive path must stay backend-transparent, like the
        // one-shot path before it.
        let table = presets::variable_length_table("t", rows, 24, rows / 10, 4, 20, seed)
            .generate()
            .expect("generation succeeds")
            .table;
        let disk = TempDisk::materialize(&table, seed.wrapping_mul(17).wrapping_add(rows as u64));
        let spec = IndexSpec::nonclustered("idx_a", ["a"]).expect("valid spec");
        let scheme = scheme_by_name("null-suppression").expect("known scheme");
        let config = ProgressiveConfig {
            target_error: 0.1,
            ..ProgressiveConfig::default()
        };
        let kind = SamplerKind::UniformWithReplacement(fraction);
        let mem = ProgressiveCf::new(kind, config)
            .seed(seed)
            .run(&table, &spec, scheme.as_ref())
            .expect("memory run succeeds");
        let dsk = ProgressiveCf::new(kind, config)
            .seed(seed)
            .run(disk.source(), &spec, scheme.as_ref())
            .expect("disk run succeeds");
        prop_assert_eq!(mem.measurement.cf, dsk.measurement.cf);
        prop_assert_eq!(&mem.measurement.data, &dsk.measurement.data);
        prop_assert_eq!(mem.checkpoints.len(), dsk.checkpoints.len());
        prop_assert_eq!(mem.pages_read, dsk.pages_read);
        prop_assert_eq!(mem.target_met, dsk.target_met);
    }
}
