//! Stratified uniform sampling over contiguous page-range strata.
//!
//! A [`StratifiedStream`] splits the row budget `round(f·n)` across the
//! strata of a [`Strata`] partition and draws uniformly **with replacement
//! within each stratum**.  Each stratum's draw is an independent,
//! prefix-stable substream: stratum `s` owns its own RNG (seeded from one
//! `next_u64` of the shared stream RNG at bind time, in stratum order), so
//! the *rows stratum `s` contributes* depend only on *how many* rows it was
//! asked for — never on how the other strata were scheduled.  That is the
//! property that lets Neyman allocation re-split the budget between batches
//! without perturbing any stratum's draw sequence.
//!
//! Budget splitting is **house monotone**: conceptually the draws are
//! assigned one at a time, each to the stratum whose allocation lags its
//! quota the most (largest deficit `a_s/Σa·t − k_s`, ties to the lowest
//! index).  Cumulative per-stratum counts therefore never decrease as the
//! total target grows, and — for a fixed weight vector — depend only on the
//! cumulative total, not on batch boundaries.  Together with per-stratum
//! prefix stability this makes the whole stream prefix-stable: draining it
//! under any batch schedule yields the same multiset of rows as a one-shot
//! draw, and [`extend_cap`](crate::SampleStream::extend_cap) deepening
//! continues the same draw.  (Feeding variance estimates back via
//! [`update_stratum_variances`](crate::SampleStream::update_stratum_variances)
//! deliberately breaks schedule independence — adapting the allocation to
//! what was measured *is the point* — so the cache paths, which never feed
//! back, stay deterministic, while `ProgressiveCf` adapts.)
//!
//! **Degenerate single-stratum case:** with one stratum there is nothing to
//! allocate, so the stream draws positions directly from the shared RNG —
//! exactly the call sequence of
//! [`UniformWrStream`](crate::UniformWrStream) — making `stratified(k=1)`
//! byte-identical to `uniform-wr` seed-for-seed (pinned by the proptest
//! suite).

use crate::error::SamplingResult;
use crate::kind::{Allocation, SamplerKind, StrataMode};
use crate::sampler::{target_size, validate_fraction, RowSampler, SampledRow};
use crate::strata::Strata;
use crate::stream::{fetch_positions_coalesced, BatchSchedule, PageCache, SampleStream};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use samplecf_storage::{Rid, TableSource};

/// Floor for fed-back stratum standard deviations, so a stratum whose
/// measured variance is (so far) zero keeps receiving a trickle of draws
/// instead of being starved forever on a possibly-premature estimate.
const SD_FLOOR: f64 = 1e-9;

/// State bound on the first batch, once the stream has seen the source.
struct BoundFrame {
    rids: Vec<Rid>,
    strata: Strata,
    /// Cumulative row targets from the batch schedule.
    targets: Vec<usize>,
    /// Per-stratum RNGs (empty in the single-stratum degenerate case,
    /// which draws from the shared RNG directly).
    rngs: Vec<StdRng>,
    /// Rows drawn per stratum so far.
    counts: Vec<usize>,
    /// Per-stratum standard-deviation estimates for Neyman allocation
    /// (all equal until a consumer feeds measurements back).
    sds: Vec<f64>,
}

impl BoundFrame {
    /// The allocation weight of each stratum under the current policy.
    fn alloc_weights(&self, alloc: Allocation) -> Vec<f64> {
        (0..self.strata.len())
            .map(|s| {
                let size = self.strata.rows(s) as f64;
                match alloc {
                    Allocation::Proportional => size,
                    Allocation::Neyman => size * self.sds[s],
                }
            })
            .collect()
    }

    /// Advance the house-monotone assignment from the current total to
    /// `target` rows, returning how many *new* draws each stratum gets.
    fn assign_up_to(&mut self, target: usize, alloc: Allocation) -> Vec<usize> {
        let weights = self.alloc_weights(alloc);
        let total_weight: f64 = weights.iter().sum();
        let mut delta = vec![0usize; self.counts.len()];
        let mut drawn: usize = self.counts.iter().sum();
        while drawn < target {
            let t = (drawn + 1) as f64;
            let mut best: Option<(usize, f64)> = None;
            for (s, &w) in weights.iter().enumerate() {
                if self.strata.rows(s) == 0 {
                    continue;
                }
                // With all weights zero (possible only if every sd was fed
                // back as zero and floored away), fall back to proportional.
                let share = if total_weight > 0.0 {
                    w / total_weight
                } else {
                    self.strata.weight(s)
                };
                let deficit = share * t - (self.counts[s] + delta[s]) as f64;
                if best.is_none_or(|(_, d)| deficit > d) {
                    best = Some((s, deficit));
                }
            }
            let (s, _) = best.expect("a non-empty table has a non-empty stratum");
            delta[s] += 1;
            drawn += 1;
        }
        delta
    }
}

/// Streaming stratified draw (see the module docs for the contract).
pub struct StratifiedStream {
    fraction: f64,
    requested_strata: usize,
    alloc: Allocation,
    mode: StrataMode,
    schedule: BatchSchedule,
    frame: Option<BoundFrame>,
    next_target: usize,
    drawn: usize,
    cache: PageCache,
    /// Stratum tag of each row of the batch most recently returned.
    last_tags: Vec<u32>,
}

impl StratifiedStream {
    /// Create a stream drawing up to `round(fraction·n)` rows across
    /// `strata` contiguous page-range strata, cut per `mode`.
    pub fn new(
        fraction: f64,
        strata: usize,
        alloc: Allocation,
        mode: StrataMode,
        schedule: BatchSchedule,
    ) -> SamplingResult<Self> {
        let fraction = validate_fraction(fraction)?;
        if strata == 0 {
            return Err(crate::error::SamplingError::InvalidSize(
                "stratum count must be at least 1".to_string(),
            ));
        }
        Ok(StratifiedStream {
            fraction,
            requested_strata: strata,
            alloc,
            mode,
            schedule,
            frame: None,
            next_target: 0,
            drawn: 0,
            cache: PageCache::new(),
            last_tags: Vec::new(),
        })
    }

    /// Physical pages read so far (the page cache's size).
    #[must_use]
    pub fn pages_read(&self) -> usize {
        self.cache.pages_cached()
    }

    /// Rows drawn per stratum so far (empty before the first batch).
    #[must_use]
    pub fn stratum_counts(&self) -> Vec<usize> {
        self.frame.as_ref().map_or(Vec::new(), |f| f.counts.clone())
    }

    fn bind(&mut self, source: &dyn TableSource, rng: &mut dyn RngCore) -> SamplingResult<()> {
        if self.frame.is_some() {
            return Ok(());
        }
        let rids = source.rids()?;
        let strata = match self.mode {
            StrataMode::EquiWidth => {
                Strata::equi_width_from_frame(&rids, source.num_pages(), self.requested_strata)?
            }
            StrataMode::EquiDepth => {
                Strata::equi_depth_from_frame(&rids, source.num_pages(), self.requested_strata)?
            }
        };
        let max_rows = target_size(rids.len(), self.fraction);
        let targets = self.schedule.cumulative_targets(rids.len(), max_rows);
        // Multi-stratum draws get independent per-stratum RNGs, derived
        // from the shared RNG in stratum order at bind time: one next_u64
        // each, so the derivation itself is part of the deterministic
        // prefix.  The single-stratum case derives nothing and consumes
        // the shared RNG exactly like UniformWrStream.
        let rngs: Vec<StdRng> = if strata.len() > 1 {
            (0..strata.len())
                .map(|_| StdRng::seed_from_u64(rng.next_u64()))
                .collect()
        } else {
            Vec::new()
        };
        let count = strata.len();
        self.frame = Some(BoundFrame {
            rids,
            strata,
            targets,
            rngs,
            counts: vec![0; count],
            sds: vec![1.0; count],
        });
        Ok(())
    }
}

impl SampleStream for StratifiedStream {
    fn kind(&self) -> SamplerKind {
        SamplerKind::Stratified {
            fraction: self.fraction,
            strata: self.requested_strata,
            alloc: self.alloc,
            mode: self.mode,
        }
    }

    fn next_batch(
        &mut self,
        source: &dyn TableSource,
        rng: &mut dyn RngCore,
    ) -> SamplingResult<Vec<SampledRow>> {
        self.bind(source, rng)?;
        let alloc = self.alloc;
        let frame = self.frame.as_mut().expect("frame bound above");
        let Some(&target) = frame.targets.get(self.next_target) else {
            self.last_tags.clear();
            return Ok(Vec::new());
        };
        let delta = frame.assign_up_to(target, alloc);
        let mut batch = Vec::with_capacity(target - self.drawn);
        self.last_tags.clear();
        for (s, &extra) in delta.iter().enumerate() {
            if extra == 0 {
                continue;
            }
            let range = frame.strata.row_range(s);
            let span = range.len();
            let positions: Vec<usize> = if frame.rngs.is_empty() {
                // Degenerate single stratum: the shared RNG, exactly like
                // UniformWrStream.
                (0..extra).map(|_| rng.gen_range(0..span)).collect()
            } else {
                let stratum_rng = &mut frame.rngs[s];
                (0..extra)
                    .map(|_| range.start + stratum_rng.gen_range(0..span))
                    .collect()
            };
            let rows = fetch_positions_coalesced(source, &frame.rids, &positions, &mut self.cache)?;
            self.last_tags
                .extend(std::iter::repeat_n(s as u32, rows.len()));
            batch.extend(rows);
            frame.counts[s] += extra;
        }
        self.drawn = target;
        self.next_target += 1;
        Ok(batch)
    }

    fn rows_drawn(&self) -> usize {
        self.drawn
    }

    fn exhausted(&self) -> bool {
        self.frame
            .as_ref()
            .is_some_and(|f| self.next_target >= f.targets.len())
    }

    fn extend_cap(&mut self, kind: SamplerKind) -> bool {
        let SamplerKind::Stratified {
            fraction,
            strata,
            alloc,
            mode,
        } = kind
        else {
            return false;
        };
        if strata != self.requested_strata
            || alloc != self.alloc
            || mode != self.mode
            || fraction < self.fraction
            || validate_fraction(fraction).is_err()
        {
            return false;
        }
        self.fraction = fraction;
        if let Some(frame) = self.frame.as_mut() {
            let max_rows = target_size(frame.rids.len(), fraction);
            frame.targets.truncate(self.next_target);
            if max_rows > self.drawn {
                frame.targets.push(max_rows);
            }
        }
        true
    }

    fn batch_strata(&self) -> Option<&[u32]> {
        Some(&self.last_tags)
    }

    fn strata_weights(&self) -> Option<Vec<f64>> {
        self.frame.as_ref().map(|f| f.strata.weights())
    }

    fn update_stratum_variances(&mut self, sds: &[f64]) {
        if let Some(frame) = self.frame.as_mut() {
            for (slot, &sd) in frame.sds.iter_mut().zip(sds) {
                if sd.is_finite() && sd >= 0.0 {
                    *slot = sd.max(SD_FLOOR);
                }
            }
        }
    }

    fn approx_retained_bytes(&self, row_bytes: usize) -> usize {
        let frame = self
            .frame
            .as_ref()
            .map_or(0, |f| f.rids.len() * std::mem::size_of::<Rid>());
        frame + self.cache.rows_cached() * (std::mem::size_of::<SampledRow>() + row_bytes)
    }
}

/// One-shot stratified sampler: drains a [`StratifiedStream`] under the
/// single-batch schedule, so [`RowSampler::sample`] and a one-shot stream
/// drain are the same draw by construction.
#[derive(Debug, Clone, Copy)]
pub struct StratifiedSampler {
    fraction: f64,
    strata: usize,
    alloc: Allocation,
    mode: StrataMode,
}

impl StratifiedSampler {
    /// Create a sampler drawing `round(fraction·n)` rows across `strata`
    /// contiguous page-range strata, cut per `mode`.
    pub fn new(
        fraction: f64,
        strata: usize,
        alloc: Allocation,
        mode: StrataMode,
    ) -> SamplingResult<Self> {
        // Validate eagerly, exactly like the stream.
        let _ = StratifiedStream::new(fraction, strata, alloc, mode, BatchSchedule::one_shot())?;
        Ok(StratifiedSampler {
            fraction,
            strata,
            alloc,
            mode,
        })
    }
}

impl RowSampler for StratifiedSampler {
    fn name(&self) -> &'static str {
        "stratified"
    }

    fn sample(
        &self,
        source: &dyn TableSource,
        rng: &mut dyn RngCore,
    ) -> SamplingResult<Vec<SampledRow>> {
        let mut stream = StratifiedStream::new(
            self.fraction,
            self.strata,
            self.alloc,
            self.mode,
            BatchSchedule::one_shot(),
        )?;
        let mut out = Vec::new();
        loop {
            let batch = stream.next_batch(source, rng)?;
            if batch.is_empty() {
                return Ok(out);
            }
            out.extend(batch);
        }
    }

    fn expected_sample_size(&self, n: usize) -> usize {
        target_size(n, self.fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::UniformWithReplacement;
    use samplecf_storage::{CountingSource, Row, Schema, Table, TableBuilder, Value};

    fn table(n: usize) -> Table {
        TableBuilder::new("t", Schema::single_char("a", 32))
            .page_size(512)
            .build_with_rows((0..n).map(|i| Row::new(vec![Value::str(format!("v{i:06}"))])))
            .unwrap()
    }

    fn drain(
        stream: &mut dyn SampleStream,
        source: &dyn TableSource,
        rng: &mut StdRng,
    ) -> Vec<SampledRow> {
        let mut rows = Vec::new();
        loop {
            let b = stream.next_batch(source, rng).unwrap();
            if b.is_empty() {
                return rows;
            }
            rows.extend(b);
        }
    }

    fn sorted(mut rows: Vec<SampledRow>) -> Vec<SampledRow> {
        rows.sort_by_key(|(rid, _)| *rid);
        rows
    }

    fn kind(f: f64, k: usize, alloc: Allocation) -> SamplerKind {
        SamplerKind::Stratified {
            fraction: f,
            strata: k,
            alloc,
            mode: StrataMode::EquiWidth,
        }
    }

    #[test]
    fn single_stratum_is_byte_identical_to_uniform_wr() {
        let t = table(2_000);
        for seed in [0u64, 7, 99] {
            let uniform = UniformWithReplacement::new(0.1)
                .unwrap()
                .sample(&t, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            let stratified =
                StratifiedSampler::new(0.1, 1, Allocation::Neyman, StrataMode::EquiWidth)
                    .unwrap()
                    .sample(&t, &mut StdRng::seed_from_u64(seed))
                    .unwrap();
            assert_eq!(stratified, uniform, "seed {seed}");
        }
    }

    #[test]
    fn stream_drains_to_the_one_shot_multiset() {
        let t = table(3_000);
        for alloc in [Allocation::Proportional, Allocation::Neyman] {
            let oneshot = StratifiedSampler::new(0.08, 5, alloc, StrataMode::EquiWidth)
                .unwrap()
                .sample(&t, &mut StdRng::seed_from_u64(13))
                .unwrap();
            let mut stream = kind(0.08, 5, alloc)
                .stream(BatchSchedule::default())
                .unwrap();
            let mut rng = StdRng::seed_from_u64(13);
            let drained = drain(stream.as_mut(), &t, &mut rng);
            assert_eq!(drained.len(), 240);
            assert!(stream.exhausted());
            assert_eq!(sorted(drained), sorted(oneshot), "{alloc:?}");
        }
    }

    #[test]
    fn batches_carry_aligned_stratum_tags() {
        let t = table(2_000);
        let mut stream = kind(0.1, 4, Allocation::Proportional)
            .stream(BatchSchedule::default())
            .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let weights = loop {
            let batch = stream.next_batch(&t, &mut rng).unwrap();
            if batch.is_empty() {
                break stream.strata_weights().unwrap();
            }
            let tags = stream.batch_strata().unwrap().to_vec();
            assert_eq!(tags.len(), batch.len(), "tags align with batch rows");
            // Tags must agree with the page-range partition.
            let strata = Strata::equi_width(&t, 4).unwrap();
            for ((rid, _), &tag) in batch.iter().zip(&tags) {
                assert_eq!(strata.stratum_of_page(rid.page) as u32, tag);
            }
        };
        assert_eq!(weights.len(), 4);
        assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn proportional_allocation_tracks_stratum_sizes() {
        let t = table(4_000);
        let mut stream = StratifiedStream::new(
            0.1,
            4,
            Allocation::Proportional,
            StrataMode::EquiWidth,
            BatchSchedule::one_shot(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let rows = drain(&mut stream, &t, &mut rng);
        assert_eq!(rows.len(), 400);
        let counts = stream.stratum_counts();
        assert_eq!(counts.iter().sum::<usize>(), 400);
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - 100).unsigned_abs() <= 2,
                "stratum {s} got {c} of an even 400/4 split"
            );
        }
    }

    #[test]
    fn neyman_feedback_shifts_the_allocation() {
        let t = table(4_000);
        let mut stream = StratifiedStream::new(
            0.1,
            4,
            Allocation::Neyman,
            StrataMode::EquiWidth,
            BatchSchedule::new(0.02, 2.0).unwrap(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        // First batch under equal sds: proportional split.
        let first = stream.next_batch(&t, &mut rng).unwrap();
        assert!(!first.is_empty());
        // Declare stratum 2 wildly more variable than the rest.
        stream.update_stratum_variances(&[0.0, 0.0, 10.0, 0.0]);
        let mut rest = Vec::new();
        loop {
            let b = stream.next_batch(&t, &mut rng).unwrap();
            if b.is_empty() {
                break;
            }
            rest.extend(b);
        }
        let counts = stream.stratum_counts();
        assert_eq!(counts.iter().sum::<usize>(), 400);
        // Nearly the whole remaining budget goes to the noisy stratum.
        assert!(
            counts[2] > counts[0] + counts[1] + counts[3],
            "Neyman must chase the variance: {counts:?}"
        );
    }

    #[test]
    fn extending_the_cap_continues_the_draw_prefix() {
        let t = table(2_000);
        let shallow = kind(0.05, 3, Allocation::Proportional);
        let deep = kind(0.2, 3, Allocation::Proportional);
        let mut stream = shallow.stream(BatchSchedule::one_shot()).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let mut rows = drain(stream.as_mut(), &t, &mut rng);
        assert_eq!(rows.len(), 100);
        assert!(stream.extend_cap(deep));
        assert_eq!(stream.kind(), deep);
        rows.extend(drain(stream.as_mut(), &t, &mut rng));
        let fresh = StratifiedSampler::new(0.2, 3, Allocation::Proportional, StrataMode::EquiWidth)
            .unwrap()
            .sample(&t, &mut StdRng::seed_from_u64(17))
            .unwrap();
        assert_eq!(
            sorted(rows),
            sorted(fresh),
            "deepening == fresh deeper draw"
        );
        // Mismatched strata, allocation, family or a shallower fraction all
        // refuse.
        assert!(!stream.extend_cap(kind(0.5, 4, Allocation::Proportional)));
        assert!(!stream.extend_cap(kind(0.5, 3, Allocation::Neyman)));
        assert!(!stream.extend_cap(kind(0.01, 3, Allocation::Proportional)));
        assert!(!stream.extend_cap(SamplerKind::Stratified {
            fraction: 0.5,
            strata: 3,
            alloc: Allocation::Proportional,
            mode: StrataMode::EquiDepth,
        }));
        assert!(!stream.extend_cap(SamplerKind::Block(0.5)));
    }

    #[test]
    fn equi_depth_tags_agree_with_the_equi_depth_partition() {
        let t = table(2_000);
        let mut stream = SamplerKind::Stratified {
            fraction: 0.1,
            strata: 4,
            alloc: Allocation::Proportional,
            mode: StrataMode::EquiDepth,
        }
        .stream(BatchSchedule::default())
        .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let strata = Strata::equi_depth(&t, 4).unwrap();
        let mut total = 0;
        loop {
            let batch = stream.next_batch(&t, &mut rng).unwrap();
            if batch.is_empty() {
                break;
            }
            let tags = stream.batch_strata().unwrap().to_vec();
            assert_eq!(tags.len(), batch.len());
            for ((rid, _), &tag) in batch.iter().zip(&tags) {
                assert_eq!(strata.stratum_of_page(rid.page) as u32, tag);
            }
            total += batch.len();
        }
        assert_eq!(total, 200);
        assert_eq!(stream.strata_weights().unwrap(), strata.weights());
    }

    #[test]
    fn page_reads_are_schedule_independent() {
        let t = table(3_000);
        let mut pages = Vec::new();
        for schedule in [
            BatchSchedule::one_shot(),
            BatchSchedule::default(),
            BatchSchedule::new(0.001, 1.3).unwrap(),
        ] {
            let counting = CountingSource::new(&t);
            let mut stream = kind(0.05, 4, Allocation::Proportional)
                .stream(schedule)
                .unwrap();
            let mut rng = StdRng::seed_from_u64(3);
            drain(stream.as_mut(), &counting, &mut rng);
            pages.push(counting.pages_read());
        }
        assert_eq!(pages[0], pages[1], "page cache must erase batch boundaries");
        assert_eq!(pages[0], pages[2]);
    }

    #[test]
    fn empty_table_stream_is_immediately_exhausted() {
        let t = table(0);
        let mut stream = kind(0.5, 4, Allocation::Neyman)
            .stream(BatchSchedule::default())
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(stream.next_batch(&t, &mut rng).unwrap().is_empty());
        assert!(stream.exhausted());
        assert_eq!(stream.rows_drawn(), 0);
    }
}
