//! Physical-I/O accounting (re-exported).
//!
//! [`CountingSource`] now lives in `samplecf-storage` (as
//! [`samplecf_storage::CountingSource`]) so that every layer — samplers, the
//! estimator, and the advisor's shared-sample planner — can account page
//! reads without a dependency on this crate.  It is re-exported here because
//! the sampling crate is where the counter earns its keep: the tests below
//! pin down the I/O cost of each sampling procedure (block sampling reads
//! exactly the selected pages; row sampling pays one page read per drawn
//! row), which is the paper's Section II-C argument made measurable.

pub use samplecf_storage::CountingSource;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockSampler;
    use crate::sampler::RowSampler;
    use crate::uniform::UniformWithReplacement;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use samplecf_storage::{Row, Schema, Table, TableBuilder, TableSource, Value};
    use std::collections::HashSet;

    fn table(n: usize) -> Table {
        TableBuilder::new("t", Schema::single_char("a", 32))
            .page_size(512)
            .build_with_rows((0..n).map(|i| Row::new(vec![Value::str(format!("v{i:06}"))])))
            .unwrap()
    }

    #[test]
    fn block_sampling_reads_exactly_the_selected_pages() {
        let t = table(3000);
        let counting = CountingSource::new(&t);
        let s = BlockSampler::new(0.1).unwrap();
        let ids = s.sample_page_ids(&counting, &mut StdRng::seed_from_u64(1));
        assert_eq!(counting.pages_read(), 0, "selection itself reads nothing");
        let sample = s.sample(&counting, &mut StdRng::seed_from_u64(1)).unwrap();
        assert!(!sample.is_empty());
        assert_eq!(counting.pages_read(), ids.len() as u64);
    }

    #[test]
    fn uniform_sampling_pays_one_page_per_distinct_page_touched() {
        let t = table(3000);
        let counting = CountingSource::new(&t);
        let s = UniformWithReplacement::new(0.05).unwrap();
        let sample = s.sample(&counting, &mut StdRng::seed_from_u64(2)).unwrap();
        // Fetches are page-coalesced: one physical read per *distinct* page
        // the drawn rids land on, not one per drawn row.  Duplicate draws
        // and same-page neighbours share a read.
        let distinct_pages: HashSet<_> = sample.iter().map(|(rid, _)| rid.page).collect();
        assert_eq!(counting.pages_read(), distinct_pages.len() as u64);
        assert!(
            counting.pages_read() < sample.len() as u64,
            "coalescing must beat the old one-read-per-row cost ({} pages for {} rows)",
            counting.pages_read(),
            sample.len()
        );
        // Scattered row sampling still touches far more pages than a block
        // sample of the same row count would (the paper's Section II-C gap).
        assert!(distinct_pages.len() > t.num_pages() / 20);
    }

    #[test]
    fn uniform_sampling_at_full_fraction_reads_each_page_once() {
        // The extreme case of coalescing: a 100% with-replacement draw
        // touches every page, and each page is read exactly once.
        let t = table(800);
        let counting = CountingSource::new(&t);
        let s = UniformWithReplacement::new(1.0).unwrap();
        let sample = s.sample(&counting, &mut StdRng::seed_from_u64(4)).unwrap();
        assert_eq!(sample.len(), 800);
        assert!(counting.pages_read() <= t.num_pages() as u64);
    }

    #[test]
    fn sampling_frame_is_metadata_and_costs_no_pages() {
        let t = table(500);
        let counting = CountingSource::new(&t);
        assert_eq!(TableSource::rids(&counting).unwrap().len(), 500);
        assert_eq!(counting.pages_read(), 0);
    }
}
