//! Configuration, error type and deterministic case runner behind the
//! [`proptest!`](crate::proptest) macro.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// The RNG handed to strategies for each generated case.
pub type TestRng = StdRng;

/// Configuration for a property test (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed (or rejected) test case.
///
/// Property bodies and helpers return `Result<(), TestCaseError>` so that
/// `prop_assert*!` failures compose with `?`.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Alias of [`TestCaseError::fail`] kept for API compatibility.
    #[must_use]
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Result type of property bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs the cases of one property with a deterministic per-test seed.
///
/// The seed is derived from the property's name (FNV-1a), so runs are
/// reproducible across processes and machines without any state files.  Set
/// `PROPTEST_SEED=<u64>` to override it when chasing a specific failure.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
}

impl TestRunner {
    /// Create a runner for the property named `name`.
    #[must_use]
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| fnv1a(name.as_bytes()));
        TestRunner { config, seed }
    }

    /// Number of cases to run.
    #[must_use]
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The base seed for this property.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The RNG for case number `case` (independent of all other cases).
    #[must_use]
    pub fn rng_for_case(&self, case: u32) -> TestRng {
        StdRng::seed_from_u64(
            self.seed
                .wrapping_add(u64::from(case).wrapping_mul(0x9E37_79B9)),
        )
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_is_deterministic_per_name() {
        use rand::RngCore;
        let a = TestRunner::new(ProptestConfig::default(), "prop_x");
        let b = TestRunner::new(ProptestConfig::default(), "prop_x");
        assert_eq!(a.seed(), b.seed());
        assert_eq!(a.rng_for_case(3).next_u64(), b.rng_for_case(3).next_u64());
        let c = TestRunner::new(ProptestConfig::default(), "prop_y");
        assert_ne!(a.seed(), c.seed());
    }
}
