//! Runs the stratified-stopping experiment (uniform vs stratified+Neyman
//! pages-to-target on a value-clustered disk table) and writes its report
//! under `results/` plus the `BENCH_stratified.json` baseline.

use samplecf_bench::experiments::{quick_mode, stratified_stopping};

fn main() {
    let report = stratified_stopping::run(quick_mode());
    let path = report.finish().expect("writing the report succeeds");
    eprintln!("report written to {}", path.display());
}
