//! The TCP front end: a nonblocking event loop, a worker pool, a handle.
//!
//! `samplecfd` is a std-only **event-driven** server.  One event-loop
//! thread owns the listener and every connection through the
//! [`poll`](crate::poll) readiness abstraction (epoll/kqueue, no async
//! runtime); `workers` threads own the CPU-and-I/O-heavy protocol work
//! (sampling, estimation) behind a **bounded request queue**.  The
//! division of labor:
//!
//! * the event loop accepts, reads, frames request lines, writes response
//!   bytes, and never blocks — so 10k idle or slow connections cost file
//!   descriptors and buffers, not threads;
//! * a worker pops one framed request, runs
//!   [`ServiceState::handle_line`], and posts the response line back to
//!   the loop through a completion queue + [`crate::poll::Waker`].
//!
//! Backpressure is explicit at both ends: a connection beyond
//! `max_connections` is answered `busy` and closed at accept, and a
//! request that finds the queue full is answered `busy` in-line (the
//! connection survives; the client backs off and retries).  Responses on
//! one connection stay strictly in request order because at most one
//! request per connection is in flight; further pipelined lines wait in
//! the connection's pending list, and once that list reaches
//! `max_pipelined` the loop simply stops reading from the socket — TCP
//! flow control pushes back on the pipeliner without costing anyone else
//! anything.
//!
//! [`ServerHandle`] supports both deployment shapes: the `samplecfd`
//! binary calls [`run`](ServerHandle::run) (block until a `shutdown`
//! request), while tests and the load harness keep the handle, talk to
//! [`addr`](ServerHandle::addr) over real sockets, and call
//! [`shutdown`](ServerHandle::shutdown) when done.

use crate::cache::{DEFAULT_CACHE_BUDGET_BYTES, DEFAULT_CACHE_SHARDS};
use crate::json::Json;
use crate::poll::{Event, Interest, Poller, Waker};
use crate::protocol::{codes, error_response, ApiError};
use crate::service::{RequestKind, ServiceState};
use samplecf_obs::{Stage, StageTimings};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of one daemon instance.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads running estimation requests.  This sizes the
    /// *compute* pool only — connection capacity is `max_connections`;
    /// an idle connection never occupies a worker.
    pub workers: usize,
    /// Byte budget of the shared sample cache.
    pub cache_budget_bytes: usize,
    /// Shard count of the sample cache (the byte budget is divided evenly
    /// across shards).
    pub cache_shards: usize,
    /// Maximum simultaneously open connections; connection number
    /// `max_connections + 1` is answered `busy` and closed at accept.
    pub max_connections: usize,
    /// Capacity of the bounded request queue between the event loop and
    /// the workers; a request arriving while it is full is answered
    /// `busy` without occupying a worker.
    pub queue_depth: usize,
    /// Longest accepted request line in bytes; longer lines are discarded
    /// and answered with a `too_large` error.
    pub max_line_bytes: usize,
    /// How many parsed-but-unserved requests one connection may pipeline
    /// before the loop stops reading its socket (TCP backpressure).
    pub max_pipelined: usize,
    /// Default inner parallelism of one estimation request (0 = all
    /// cores); a request's `"threads"` field overrides it.  The default
    /// of 1 composes with `workers`: the pool is the parallel axis under
    /// concurrent load, so `workers × estimator_threads` should not
    /// exceed the core count by much.  Raise this (and lower `workers`)
    /// for a latency-oriented daemon serving few large requests.
    pub estimator_threads: usize,
    /// A request whose end-to-end wall time exceeds this many milliseconds
    /// is counted in `samplecf_slow_requests_total` and logged as one
    /// structured JSON line on stderr (op, total, per-stage breakdown).
    /// `0` disables the log (the counter then never fires).
    pub slow_request_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            cache_budget_bytes: DEFAULT_CACHE_BUDGET_BYTES,
            cache_shards: DEFAULT_CACHE_SHARDS,
            max_connections: 10_240,
            queue_depth: 1_024,
            max_line_bytes: 1024 * 1024,
            max_pipelined: 64,
            estimator_threads: 1,
            slow_request_ms: 1_000,
        }
    }
}

/// One framed request traveling loop → worker.  Its stage clock starts
/// when the event loop enqueues it, so time spent waiting for a worker is
/// observable as the queue-wait stage.
struct Job {
    conn: usize,
    gen: u64,
    line: String,
    timings: StageTimings,
}

/// One response line traveling worker → loop, with the request's
/// classification and finished stage clock for the loop to observe.
struct Completion {
    conn: usize,
    gen: u64,
    response: String,
    kind: RequestKind,
    timings: StageTimings,
}

/// The bounded loop → workers queue.  `try_push` never blocks (the event
/// loop must not); `pop` blocks a worker until a job or close arrives.
struct RequestQueue {
    inner: Mutex<(VecDeque<Job>, bool)>,
    ready: Condvar,
    capacity: usize,
}

impl RequestQueue {
    fn new(capacity: usize) -> Self {
        RequestQueue {
            inner: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, (VecDeque<Job>, bool)> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Enqueue or fail immediately; on success returns the new depth.
    fn try_push(&self, job: Job) -> Result<usize, Job> {
        let mut guard = self.lock();
        if guard.1 || guard.0.len() >= self.capacity {
            return Err(job);
        }
        guard.0.push_back(job);
        let depth = guard.0.len();
        drop(guard);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocking pop; `None` once the queue is closed *and* drained.
    /// Also reports the post-pop depth so the caller can keep the gauge
    /// honest.
    fn pop(&self) -> Option<(Job, usize)> {
        let mut guard = self.lock();
        loop {
            if let Some(job) = guard.0.pop_front() {
                let depth = guard.0.len();
                return Some((job, depth));
            }
            if guard.1 {
                return None;
            }
            guard = self
                .ready
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn close(&self) {
        self.lock().1 = true;
        self.ready.notify_all();
    }
}

/// The workers → loop completion mailbox; every push rings the waker.
struct Completions {
    inner: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl Completions {
    fn push(&self, completion: Completion) {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(completion);
        self.waker.wake();
    }

    fn take(&self) -> Vec<Completion> {
        std::mem::take(
            &mut self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }
}

/// An entry in a connection's in-order pending list: either a request
/// line awaiting a worker, or a response the loop already produced
/// locally (busy / too_large) that must still leave in arrival order.
enum PendingItem {
    Line(String),
    Immediate(String),
}

/// Per-connection state owned by the event loop.
struct Conn {
    stream: TcpStream,
    /// Guards the slot against reuse: a completion for a previous tenant
    /// of this slot carries a stale generation and is dropped.
    gen: u64,
    /// Unframed bytes read so far (at most one partial line).
    read_buf: Vec<u8>,
    /// Response bytes not yet accepted by the socket.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Framed requests (and locally produced responses) in arrival order.
    pending: VecDeque<PendingItem>,
    /// Whether one of this connection's requests is queued or running on
    /// a worker — at most one, which is what keeps responses in order.
    inflight: bool,
    /// Mid-discard of an oversized line (drop bytes until the newline).
    discarding: bool,
    /// The peer sent EOF; serve what's pending, flush, then close.
    peer_closed: bool,
    /// A fatal I/O error occurred; close as soon as control returns.
    dead: bool,
    interest: Interest,
}

impl Conn {
    fn flushed(&self) -> bool {
        self.write_pos >= self.write_buf.len()
    }

    fn push_response(&mut self, line: &str) {
        self.write_buf.extend_from_slice(line.as_bytes());
        self.write_buf.push(b'\n');
    }
}

const LISTENER_TOKEN: usize = usize::MAX - 1;
/// Read in chunks, at most this many per readiness event, so one
/// firehosing client cannot starve the rest of the loop (level-triggered
/// polling re-reports whatever is left).
const READ_CHUNK: usize = 16 * 1024;
const MAX_CHUNKS_PER_EVENT: usize = 8;

fn busy_line(message: &str) -> String {
    error_response(&ApiError::new(codes::BUSY, message)).to_line()
}

struct EventLoop {
    listener: TcpListener,
    poller: Poller,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    open: usize,
    next_gen: u64,
    state: Arc<ServiceState>,
    queue: Arc<RequestQueue>,
    completions: Arc<Completions>,
    config: ServerConfig,
    /// Set once shutdown is observed: stop accepting and dispatching,
    /// only flush what is already owed.
    draining: bool,
}

impl EventLoop {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            // The timeout is a belt-and-braces bound: every interesting
            // transition (completion, shutdown) also rings the waker.
            if self
                .poller
                .wait(&mut events, Some(Duration::from_millis(500)))
                .is_err()
            {
                break;
            }
            for (i, event) in std::mem::take(&mut events).into_iter().enumerate() {
                if event.token == LISTENER_TOKEN {
                    self.accept_ready();
                } else {
                    self.conn_ready(&event);
                }
                // Interleave completion draining with socket work: a ready
                // list of thousands of connections can take a long time to
                // service, and a finished response must not sit in the
                // mailbox for that whole sweep (the `drain` stage histogram
                // is what exposed this as the dominant non-queue tail).
                if i % 64 == 63 {
                    self.drain_completions();
                }
            }
            self.drain_completions();
            if self.state.shutdown_requested() {
                break;
            }
        }
        self.wind_down();
        self.queue.close();
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let accepted = Instant::now();
                    self.admit(stream);
                    self.state.observe_stage(Stage::Accept, accepted.elapsed());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient per-connection accept failures (reset before
                // accept, fd pressure): drop that connection, keep going.
                Err(_) => break,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if self.draining {
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        if self.open >= self.config.max_connections {
            // Over the limit: tell the client why, best-effort, and close.
            self.state.gauges.connection_rejected();
            let mut line = busy_line("connection limit reached, retry later").into_bytes();
            line.push(b'\n');
            let _ = (&stream).write(&line);
            return;
        }
        let _ = stream.set_nodelay(true);
        let idx = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        self.next_gen += 1;
        if self.poller.register(&stream, idx, Interest::READ).is_err() {
            self.free.push(idx);
            return;
        }
        self.conns[idx] = Some(Conn {
            stream,
            gen: self.next_gen,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            pending: VecDeque::new(),
            inflight: false,
            discarding: false,
            peer_closed: false,
            dead: false,
            interest: Interest::READ,
        });
        self.open += 1;
        self.state.gauges.connection_opened();
    }

    fn conn_ready(&mut self, event: &Event) {
        let idx = event.token;
        let Some(Some(conn)) = self.conns.get_mut(idx) else {
            return;
        };
        if event.readable || event.closed {
            Self::read_some(conn, self.config.max_line_bytes);
        }
        self.pump(idx);
    }

    /// Nonblocking read: frame complete lines into `pending`, keep at
    /// most one partial line in `read_buf`, enforce the line length cap.
    fn read_some(conn: &mut Conn, max_line_bytes: usize) {
        let mut chunk = [0u8; READ_CHUNK];
        for _ in 0..MAX_CHUNKS_PER_EVENT {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_closed = true;
                    // A non-empty tail without a newline is the final
                    // (unterminated) request of the connection.
                    if !conn.read_buf.is_empty() && !conn.discarding {
                        let line = String::from_utf8_lossy(&conn.read_buf).into_owned();
                        conn.pending.push_back(PendingItem::Line(line));
                    }
                    conn.read_buf.clear();
                    break;
                }
                Ok(n) => Self::ingest(conn, &chunk[..n], max_line_bytes),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
    }

    fn ingest(conn: &mut Conn, bytes: &[u8], max_line_bytes: usize) {
        conn.read_buf.extend_from_slice(bytes);
        let mut start = 0usize;
        while let Some(off) = conn.read_buf[start..].iter().position(|&b| b == b'\n') {
            let end = start + off;
            if conn.discarding {
                // Tail of an oversized line; the error was already queued.
                conn.discarding = false;
            } else {
                let line = String::from_utf8_lossy(&conn.read_buf[start..end]).into_owned();
                conn.pending.push_back(PendingItem::Line(line));
            }
            start = end + 1;
        }
        conn.read_buf.drain(..start);
        if conn.read_buf.len() > max_line_bytes {
            conn.read_buf.clear();
            if !conn.discarding {
                conn.discarding = true;
                let response = error_response(&ApiError::new(
                    codes::TOO_LARGE,
                    format!("request line exceeds {max_line_bytes} bytes"),
                ))
                .to_line();
                conn.pending.push_back(PendingItem::Immediate(response));
            }
        }
    }

    /// Move a connection forward: dispatch its next pending request (at
    /// most one in flight), flush response bytes, keep poll interest in
    /// sync, and close if finished.  Safe to call redundantly.
    fn pump(&mut self, idx: usize) {
        let Some(Some(conn)) = self.conns.get_mut(idx) else {
            return;
        };

        while !conn.inflight && !conn.dead && !self.draining {
            match conn.pending.pop_front() {
                None => break,
                Some(PendingItem::Immediate(response)) => conn.push_response(&response),
                Some(PendingItem::Line(line)) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    match self.queue.try_push(Job {
                        conn: idx,
                        gen: conn.gen,
                        line,
                        timings: StageTimings::start(),
                    }) {
                        Ok(depth) => {
                            self.state.gauges.set_queue_depth(depth);
                            conn.inflight = true;
                        }
                        Err(_job) => {
                            self.state.gauges.busy_rejected();
                            conn.push_response(&busy_line("request queue is full, retry later"));
                        }
                    }
                }
            }
        }

        // Flush what the socket will take.
        let flush_started = (!conn.dead && !conn.flushed()).then(Instant::now);
        while !conn.dead && conn.write_pos < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => {
                    conn.dead = true;
                }
                Ok(n) => conn.write_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => conn.dead = true,
            }
        }
        if let Some(started) = flush_started {
            self.state.observe_stage(Stage::Write, started.elapsed());
        }
        if conn.flushed() {
            conn.write_buf.clear();
            conn.write_pos = 0;
        }

        let finished =
            conn.peer_closed && conn.pending.is_empty() && !conn.inflight && conn.flushed();
        if conn.dead || finished {
            self.close_conn(idx);
            return;
        }

        let desired = Interest {
            readable: !conn.peer_closed && conn.pending.len() < self.config.max_pipelined,
            writable: !conn.flushed(),
        };
        if desired != conn.interest {
            conn.interest = desired;
            let _ = self.poller.modify(&conn.stream, idx, desired);
        }
    }

    fn close_conn(&mut self, idx: usize) {
        if let Some(conn) = self.conns.get_mut(idx).and_then(Option::take) {
            let _ = self.poller.deregister(&conn.stream, idx);
            drop(conn);
            self.free.push(idx);
            self.open -= 1;
            self.state.gauges.connection_closed();
        }
    }

    fn drain_completions(&mut self) {
        for completion in self.completions.take() {
            // Observe unconditionally — the work happened even when the
            // addressee connection is already gone.
            self.observe_completion(&completion);
            let Some(Some(conn)) = self.conns.get_mut(completion.conn) else {
                continue;
            };
            if conn.gen != completion.gen {
                continue; // the slot was reused; the addressee is gone
            }
            conn.inflight = false;
            conn.push_response(&completion.response);
            self.pump(completion.conn);
        }
    }

    /// Record a finished request's latency and stage breakdown; above the
    /// slow-request threshold, also emit one structured JSON log line.
    fn observe_completion(&self, completion: &Completion) {
        let total_ns = self
            .state
            .observe_request(completion.kind, &completion.timings);
        let threshold_ns = self.config.slow_request_ms.saturating_mul(1_000_000);
        if threshold_ns == 0 || total_ns < threshold_ns {
            return;
        }
        self.state.note_slow_request();
        let mut stages = Json::obj();
        for (stage, nanos) in completion.timings.recorded() {
            stages = stages.field(stage.name(), Json::uint(nanos));
        }
        let log = Json::obj()
            .field("event", Json::str("slow_request"))
            .field("op", Json::str(completion.kind.name()))
            .field("threshold_ms", Json::uint(self.config.slow_request_ms))
            .field("total_ns", Json::uint(total_ns))
            .field("stages_ns", stages);
        eprintln!("{log}");
    }

    /// Shutdown path: stop accepting and dispatching, give in-flight
    /// requests and unflushed responses a bounded window to complete,
    /// then drop everything.
    fn wind_down(&mut self) {
        self.draining = true;
        let _ = self.poller.deregister(&self.listener, LISTENER_TOKEN);
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut events: Vec<Event> = Vec::new();
        loop {
            let owed = self
                .conns
                .iter()
                .flatten()
                .any(|c| c.inflight || !c.flushed());
            if !owed || Instant::now() >= deadline {
                break;
            }
            if self
                .poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .is_err()
            {
                break;
            }
            for event in std::mem::take(&mut events) {
                if event.token != LISTENER_TOKEN {
                    self.pump(event.token);
                }
            }
            self.drain_completions();
        }
        for idx in 0..self.conns.len() {
            self.close_conn(idx);
        }
    }
}

/// A running server: bind with [`Server::bind`], then [`ServerHandle::run`]
/// or drive it from tests and shut it down explicitly.
pub struct Server;

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), start the
    /// event-loop and worker threads, and return the owner's handle.
    pub fn bind(addr: &str, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let state = Arc::new(
            ServiceState::with_shards(config.cache_budget_bytes, config.cache_shards)
                .with_estimator_threads(config.estimator_threads),
        );
        state
            .gauges
            .set_limits(config.max_connections, config.queue_depth);

        let poller = Poller::new()?;
        poller.register(&listener, LISTENER_TOKEN, Interest::READ)?;
        let waker = poller.waker();

        let queue = Arc::new(RequestQueue::new(config.queue_depth.max(1)));
        let completions = Arc::new(Completions {
            inner: Mutex::new(Vec::new()),
            waker: waker.clone(),
        });

        let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let completions = Arc::clone(&completions);
                let state = Arc::clone(&state);
                std::thread::spawn(move || {
                    while let Some((mut job, depth)) = queue.pop() {
                        state.gauges.set_queue_depth(depth);
                        // Everything since enqueue was spent waiting for
                        // this worker.
                        job.timings
                            .add(Stage::QueueWait, job.timings.started().elapsed());
                        let (response, kind) =
                            state.handle_line_traced(&job.line, &mut job.timings);
                        completions.push(Completion {
                            conn: job.conn,
                            gen: job.gen,
                            response,
                            kind,
                            timings: job.timings,
                        });
                    }
                })
            })
            .collect();

        let event_loop = {
            let state = Arc::clone(&state);
            let queue = Arc::clone(&queue);
            let completions = Arc::clone(&completions);
            std::thread::spawn(move || {
                EventLoop {
                    listener,
                    poller,
                    conns: Vec::new(),
                    free: Vec::new(),
                    open: 0,
                    next_gen: 0,
                    state,
                    queue,
                    completions,
                    config,
                    draining: false,
                }
                .run();
            })
        };

        Ok(ServerHandle {
            addr: local_addr,
            state,
            waker,
            event_loop: Some(event_loop),
            workers,
        })
    }
}

/// The owner's view of a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    waker: Waker,
    event_loop: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when bound to port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state — the in-process view the tests and the
    /// load harness read counters from.
    #[must_use]
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Block until a `shutdown` request is accepted, then wind down.  This
    /// is the daemon binary's main loop.
    pub fn run(mut self) {
        self.join_all();
    }

    /// Stop the server from the owning thread: raise the flag, wake the
    /// event loop, join everything.  Safe to call whether or not a
    /// `shutdown` request was already processed.
    pub fn shutdown(mut self) {
        self.state.request_shutdown();
        self.waker.wake();
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(event_loop) = self.event_loop.take() {
            let _ = event_loop.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}
