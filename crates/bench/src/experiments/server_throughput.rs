//! **Server throughput experiment** — the service-layer claim, measured:
//! an in-process `samplecfd` serving N concurrent client threads issuing a
//! mixed estimate/advise workload reads the sampled pages **once per cache
//! group**, while the naive one-process-per-request baseline (what every
//! `samplecf estimate` invocation before the server existed had to do)
//! pays the draw I/O on every request.  Requests per second and total
//! pages read are both measured over real TCP sockets, not simulated —
//! this is the ROADMAP's "serve heavy traffic" direction made into an
//! experiment, and the always-on "what-if" service Kimura et al.'s
//! compression-aware advisor assumes.

use crate::report::{fmt, Report, Table};
use samplecf_core::SampleCf;
use samplecf_datagen::presets;
use samplecf_index::IndexSpec;
use samplecf_sampling::SamplerKind;
use samplecf_server::{Json, Server, ServerConfig};
use samplecf_storage::{CountingSource, DiskTable, TableSource};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

/// The request mix one client thread sends, round-robin.
fn request_line(i: usize) -> String {
    const SCHEMES: [&str; 3] = ["dictionary-global", "null-suppression", "rle"];
    if i % 4 == 3 {
        // Every fourth request is an advise over three candidates.
        r#"{"op":"advise","table":"tp_t","sampler":"block","fraction":0.05,"seed":1,"candidates":[{"index":"idx_dict","scheme":"dictionary-global"},{"index":"idx_ns","scheme":"null-suppression"},{"index":"pk","scheme":"rle","clustered":true}]}"#
            .to_string()
    } else {
        // Estimates cycle schemes but share one (sampler, fraction, seed)
        // cache group — the server draws once for all of them.
        format!(
            r#"{{"op":"estimate","table":"tp_t","sampler":"block","fraction":0.05,"scheme":"{}","seed":1}}"#,
            SCHEMES[i % SCHEMES.len()]
        )
    }
}

/// Run the experiment.
pub fn run(quick: bool) -> Report {
    let rows = if quick { 40_000 } else { 120_000 };
    let requests_per_client = if quick { 8 } else { 24 };
    let client_counts: &[usize] = if quick { &[1, 4, 8] } else { &[1, 2, 4, 8, 16] };
    let fraction = 0.05;

    let generated = presets::variable_length_table("tp_t", rows, 24, rows / 100, 4, 20, 97)
        .generate()
        .expect("generation succeeds");
    let path = std::env::temp_dir().join(format!(
        "samplecf_exp_server_throughput_{}.scf",
        std::process::id()
    ));
    let disk = DiskTable::materialize(&path, &generated.table).expect("materialisation succeeds");
    let num_pages = disk.num_pages();
    let pages_per_draw = ((num_pages as f64) * fraction).round().max(1.0) as u64;
    drop(disk);

    let mut report = Report::new("exp_server_throughput");
    let mut t = Table::new(
        format!(
            "samplecfd vs one-process-per-request (n = {rows}, {num_pages} pages on disk, \
             block sampling f = {fraction}, {requests_per_client} requests/client over TCP)"
        ),
        &[
            "clients",
            "requests",
            "req/s",
            "server pages",
            "naive pages",
            "I/O ratio",
            "hits",
            "coalesced",
        ],
    );

    for &clients in client_counts {
        // A fresh server per row so cache counters start clean.
        let handle = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: clients.max(4),
                ..ServerConfig::default()
            },
        )
        .expect("bind succeeds");
        let addr = handle.addr();
        {
            let entry = handle
                .state()
                .catalog
                .register(&path.to_string_lossy(), None)
                .expect("register succeeds");
            assert_eq!(entry.shared.num_pages(), num_pages);
        }

        let total_requests = clients * requests_per_client;
        let started = Instant::now();
        std::thread::scope(|scope| {
            for client in 0..clients {
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let mut writer = stream.try_clone().expect("clone");
                    let mut reader = BufReader::new(stream);
                    let mut line = String::new();
                    for i in 0..requests_per_client {
                        let request = request_line(client * requests_per_client + i);
                        writer
                            .write_all(request.as_bytes())
                            .and_then(|()| writer.write_all(b"\n"))
                            .expect("send");
                        line.clear();
                        reader.read_line(&mut line).expect("receive");
                        let reply = Json::parse(line.trim()).expect("valid reply");
                        assert_eq!(
                            reply.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "request failed: {reply}"
                        );
                    }
                });
            }
        });
        let elapsed = started.elapsed();

        let stats = handle.state().cache.stats();
        handle.shutdown();

        // Naive baseline: every request re-draws its sample, so it pays
        // one full draw per request (advise draws once for its three
        // candidates in-process, so it still counts one draw here — the
        // baseline is one *process* per request, not one per candidate).
        let naive_pages = pages_per_draw * total_requests as u64;
        assert_eq!(
            stats.pages_read, pages_per_draw,
            "all requests share one cache group: one draw total"
        );
        t.row(&[
            clients.to_string(),
            total_requests.to_string(),
            fmt(total_requests as f64 / elapsed.as_secs_f64()),
            stats.pages_read.to_string(),
            naive_pages.to_string(),
            fmt(naive_pages as f64 / stats.pages_read.max(1) as f64),
            stats.hits.to_string(),
            stats.coalesced_waits.to_string(),
        ]);
    }

    // Ground the baseline column in a measurement rather than arithmetic:
    // one client-side estimate run reads exactly pages_per_draw pages.
    let disk = DiskTable::open(&path).expect("reopen succeeds");
    let counting = CountingSource::new(&disk);
    let spec = IndexSpec::nonclustered("idx", ["a"]).expect("valid spec");
    SampleCf::new(SamplerKind::Block(fraction))
        .seed(1)
        .estimate(
            &counting,
            &spec,
            samplecf_compression::scheme_by_name("dictionary-global")
                .expect("known scheme")
                .as_ref(),
        )
        .expect("estimation succeeds");
    assert_eq!(counting.pages_read(), pages_per_draw);
    drop(disk);
    let _ = std::fs::remove_file(&path);

    t.note(
        "Measured shape: the server's pages-read column is flat at round(f·N) — one draw per \
         (table, sampler, fraction, seed) group however many clients hammer it, with duplicate \
         in-flight requests coalesced onto the first draw (the `coalesced` column counts the \
         waits) — while the naive one-process-per-request baseline re-reads the sample every \
         time, so its I/O grows linearly with the request count and the I/O ratio equals the \
         request count by construction.  Requests/sec grows with the client count until CPU-bound \
         candidate evaluation (index build + compression per request) saturates the workers; \
         the win the service layer adds on top of per-request CPU is exactly the eliminated \
         redundant I/O plus connection reuse.",
    );
    report.add(t);
    report
}
