//! File-backed heap files.
//!
//! A [`DiskHeapFile`] is the persistent counterpart of
//! [`HeapFile`](crate::heap::HeapFile): an append-only sequence of slotted
//! pages stored in one file using the layout in
//! [`format`](mod@crate::disk::format).  Appends fill an in-memory tail page and
//! flush full pages to disk; [`sync`](DiskHeapFile::sync) persists the
//! partial tail and the metadata header.  Reads go straight to the file —
//! there is deliberately no buffer pool, so on a freshly opened file every
//! [`read_page`](DiskHeapFile::read_page) is one physical page read, which
//! is exactly the cost model the paper's block-sampling discussion
//! (Section II-C) is about.  (The only cached page is the unflushed tail
//! while a writer is appending.)
//!
//! Reads are **concurrent**: on Unix each page read is one positional
//! `pread` that never touches the shared file cursor, so any number of
//! threads (the `samplecfd` worker pool, parallel advisor draws) can read
//! pages of one open file simultaneously with no lock held.  On other
//! platforms reads fall back to seek-then-read under a
//! [`parking_lot::Mutex`] guarding the cursor.  Writes always take that
//! lock; they also require `&mut self`, so they never race reads.

use crate::disk::format::{self, FileHeader, FILE_HEADER_SIZE};
use crate::error::{StorageError, StorageResult};
use crate::page::{max_record_len, validate_page_size, Page};
use crate::pool::PagePool;
use crate::rid::{PageId, Rid};
use crate::source::PageRead;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// An append-only heap file persisted to disk, page by page.
#[derive(Debug)]
pub struct DiskHeapFile {
    file: File,
    /// Guards the file cursor for seek-based access (writes everywhere,
    /// reads on non-Unix platforms).  Unix reads bypass it via `pread`.
    cursor: Mutex<()>,
    path: PathBuf,
    page_size: usize,
    data_offset: u64,
    meta: Vec<u8>,
    num_records: usize,
    num_pages: usize,
    /// Write buffer: the last page of the file, loaded lazily on the first
    /// append so it can be filled further.  Its on-disk copy may be stale
    /// until the next flush.  Absent on read-only usage, in which case
    /// every page access is a physical file read.
    tail: Option<Page>,
    /// Whether `tail` or the header counts differ from the file contents.
    dirty: bool,
    /// Scratch buffers for physical page reads, recycled across reads so the
    /// hot sampling path does not allocate one stride per page.
    pool: PagePool,
}

impl DiskHeapFile {
    /// Create a new (empty) heap file at `path`, truncating any existing
    /// file.  `meta` is an opaque metadata blob stored in the file header
    /// region (the table layer stores its name and schema there).
    pub fn create(
        path: impl AsRef<Path>,
        page_size: usize,
        meta: &[u8],
    ) -> StorageResult<DiskHeapFile> {
        validate_page_size(page_size)?;
        if meta.len() > u32::MAX as usize {
            return Err(StorageError::InvalidFormat(format!(
                "metadata blob of {} bytes exceeds the format limit",
                meta.len()
            )));
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        let mut this = DiskHeapFile {
            file,
            cursor: Mutex::new(()),
            path: path.as_ref().to_path_buf(),
            page_size,
            data_offset: format::align_up(FILE_HEADER_SIZE + meta.len(), page_size) as u64,
            meta: meta.to_vec(),
            num_records: 0,
            num_pages: 0,
            tail: None,
            dirty: false,
            pool: PagePool::default(),
        };
        this.write_metadata()?;
        Ok(this)
    }

    /// Open an existing heap file, validating the header, metadata CRC and
    /// file length.  No data page is touched: the tail page is loaded
    /// lazily on the first [`append`](DiskHeapFile::append), so read-only
    /// consumers (`samplecf info`, estimation) never pay for it.
    pub fn open(path: impl AsRef<Path>) -> StorageResult<DiskHeapFile> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path.as_ref())?;
        let mut fixed = vec![0u8; FILE_HEADER_SIZE];
        file.read_exact(&mut fixed)
            .map_err(|e| StorageError::InvalidFormat(format!("cannot read file header: {e}")))?;
        let header = format::decode_file_header(&fixed)?;

        // Bound every untrusted header field against the real file length
        // *before* allocating or reading anything sized by it: a corrupt
        // header must produce an error, never a huge allocation.
        let actual_len = file.metadata()?.len();
        if actual_len != header.expected_file_len() {
            return Err(StorageError::InvalidFormat(format!(
                "file is {actual_len} bytes but the header implies {} ({} pages of {} bytes)",
                header.expected_file_len(),
                header.num_pages,
                header.page_size
            )));
        }

        let mut region = vec![0u8; header.data_offset as usize];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut region)
            .map_err(|e| StorageError::InvalidFormat(format!("metadata region truncated: {e}")))?;
        format::verify_metadata_crc(&region)?;
        let meta = region[FILE_HEADER_SIZE..FILE_HEADER_SIZE + header.meta_len].to_vec();

        Ok(DiskHeapFile {
            file,
            cursor: Mutex::new(()),
            path: path.as_ref().to_path_buf(),
            page_size: header.page_size,
            data_offset: header.data_offset,
            meta,
            num_records: header.num_rows,
            num_pages: header.num_pages,
            tail: None,
            dirty: false,
            pool: PagePool::default(),
        })
    }

    fn header(&self) -> FileHeader {
        FileHeader {
            page_size: self.page_size,
            num_pages: self.num_pages,
            num_rows: self.num_records,
            data_offset: self.data_offset,
            meta_len: self.meta.len(),
        }
    }

    /// Read exactly `buf.len()` bytes at `offset`.  On Unix this is one
    /// positional `pread` with no lock — the concurrent-read fast path; the
    /// portable fallback serialises on the cursor lock.
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            let _cursor = self.cursor.lock();
            let mut file = &self.file;
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(buf)
        }
    }

    /// Write `bytes` at `offset`, holding the cursor lock for the seek.
    fn write_all_at(&self, offset: u64, bytes: &[u8]) -> std::io::Result<()> {
        let _cursor = self.cursor.lock();
        let mut file = &self.file;
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(bytes)
    }

    fn write_metadata(&mut self) -> StorageResult<()> {
        let region = format::encode_metadata(&self.header(), &self.meta);
        self.write_all_at(0, &region)?;
        Ok(())
    }

    fn write_page(&self, page: &Page) -> StorageResult<()> {
        let block = format::encode_page(page);
        self.write_all_at(self.header().page_offset(page.id()), &block)?;
        Ok(())
    }

    fn read_page_at(&self, id: PageId, header: &FileHeader) -> StorageResult<Page> {
        let mut block = self.pool.acquire(header.page_stride() as usize);
        self.read_exact_at(header.page_offset(id), &mut block)
            .map_err(|e| StorageError::Io(format!("reading page {id}: {e}")))?;
        format::decode_page(id, self.page_size, &block)
    }

    /// The path this heap file lives at.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The configured page size in bytes.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of pages (including an unflushed tail, if any).
    #[must_use]
    pub fn num_pages(&self) -> usize {
        self.num_pages
    }

    /// Number of stored records.
    #[must_use]
    pub fn num_records(&self) -> usize {
        self.num_records
    }

    /// The opaque metadata blob stored in the file header region.
    #[must_use]
    pub fn meta(&self) -> &[u8] {
        &self.meta
    }

    /// Total size in bytes the file occupies once synced.
    #[must_use]
    pub fn file_len(&self) -> u64 {
        self.header().expected_file_len()
    }

    /// Load the last page into the write buffer (first append after open),
    /// or allocate page 0 for an empty file.
    fn ensure_tail(&mut self) -> StorageResult<()> {
        if self.tail.is_some() {
            return Ok(());
        }
        if self.num_pages == 0 {
            self.tail = Some(Page::new(0, self.page_size)?);
            self.num_pages = 1;
        } else {
            let header = self.header();
            self.tail = Some(self.read_page_at(self.num_pages as PageId - 1, &header)?);
        }
        Ok(())
    }

    /// Append a record, returning its [`Rid`].  Full pages are written out
    /// immediately; the partial tail page stays in memory until
    /// [`sync`](DiskHeapFile::sync).
    pub fn append(&mut self, record: &[u8]) -> StorageResult<Rid> {
        if record.len() > max_record_len(self.page_size) {
            return Err(StorageError::RecordTooLarge {
                record_len: record.len(),
                max_payload: max_record_len(self.page_size),
            });
        }
        self.ensure_tail()?;
        let tail = self.tail.as_mut().expect("tail loaded by ensure_tail");
        let rid = if let Some(slot) = tail.insert(record)? {
            Rid::new(tail.id(), slot)
        } else {
            // Tail full: persist it and start the next page.
            let next_id = tail.id() + 1;
            let full = self.tail.take().expect("tail exists");
            self.write_page(&full)?;
            let mut page = Page::new(next_id, self.page_size)?;
            let slot = page
                .insert(record)?
                .expect("record fits in an empty page by the length check above");
            self.tail = Some(page);
            self.num_pages = next_id as usize + 1;
            Rid::new(next_id, slot)
        };
        self.num_records += 1;
        self.dirty = true;
        Ok(rid)
    }

    /// Persist the partial tail page and the metadata header, then fsync.
    pub fn sync(&mut self) -> StorageResult<()> {
        if self.dirty {
            if let Some(tail) = self.tail.as_ref() {
                self.write_page(tail)?;
            }
            self.write_metadata()?;
            self.dirty = false;
            // The file layout may have grown: fence the scratch pool so any
            // buffer acquired against the old layout is retired, not reused.
            self.pool.bump_generation();
        }
        self.file.sync_all()?;
        Ok(())
    }

    /// The scratch-buffer pool physical reads draw from (for inspection).
    #[must_use]
    pub fn pool(&self) -> &PagePool {
        &self.pool
    }

    /// Read one page.  This is a physical file read, with one exception:
    /// while appends are in flight the unflushed tail page is served from
    /// the write buffer (its on-disk copy may be stale).  On a freshly
    /// opened file every page access hits the file.
    pub fn read_page(&self, id: PageId) -> StorageResult<Page> {
        Ok(self.read_page_ref(id)?.into_owned())
    }

    /// Read one page without forcing a copy: the unflushed in-memory tail is
    /// *borrowed* straight out of the write buffer (the fix for the
    /// tail-clone-per-read hot spot), while every other page is physically
    /// read from the file and returned owned.
    pub fn read_page_ref(&self, id: PageId) -> StorageResult<PageRead<'_>> {
        if (id as usize) >= self.num_pages() {
            return Err(StorageError::InvalidRid { page: id, slot: 0 });
        }
        if let Some(tail) = self.tail.as_ref() {
            if tail.id() == id {
                return Ok(PageRead::Borrowed(tail));
            }
        }
        Ok(PageRead::Owned(self.read_page_at(id, &self.header())?))
    }
}

impl Drop for DiskHeapFile {
    fn drop(&mut self) {
        // Best-effort durability for users who forget the explicit sync;
        // errors here have no channel to report through.
        if self.dirty {
            let _ = self.sync();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "samplecf_heap_{tag}_{}_{n}.scf",
            std::process::id()
        ))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn create_append_sync_open_roundtrip() {
        let path = temp_path("roundtrip");
        let _cleanup = Cleanup(path.clone());
        let mut rids = Vec::new();
        {
            let mut h = DiskHeapFile::create(&path, 256, b"meta-blob").unwrap();
            for i in 0..100u8 {
                rids.push(h.append(&[i; 20]).unwrap());
            }
            h.sync().unwrap();
            assert!(h.num_pages() > 1);
            assert_eq!(h.num_records(), 100);
        }
        let h = DiskHeapFile::open(&path).unwrap();
        assert_eq!(h.num_records(), 100);
        assert_eq!(h.page_size(), 256);
        assert_eq!(h.meta(), b"meta-blob");
        for (i, rid) in rids.iter().enumerate() {
            let page = h.read_page(rid.page).unwrap();
            assert_eq!(page.get(rid.slot).unwrap(), &[i as u8; 20]);
        }
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            h.file_len(),
            "header-implied length matches the real file"
        );
    }

    #[test]
    fn concurrent_readers_see_identical_pages() {
        let path = temp_path("concurrent");
        let _cleanup = Cleanup(path.clone());
        {
            let mut h = DiskHeapFile::create(&path, 256, b"").unwrap();
            for i in 0..120u8 {
                h.append(&[i; 24]).unwrap();
            }
            h.sync().unwrap();
        }
        let h = DiskHeapFile::open(&path).unwrap();
        let serial: Vec<Vec<u8>> = (0..h.num_pages())
            .map(|pid| h.read_page(pid as PageId).unwrap().raw().to_vec())
            .collect();
        // Eight threads hammer every page repeatedly through one shared
        // handle; every read must match the serial pass byte for byte.
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for round in 0..4 {
                        for pid in 0..h.num_pages() {
                            // Vary the order per round to interleave offsets.
                            let pid = (pid + round * 7) % h.num_pages();
                            let page = h.read_page(pid as PageId).unwrap();
                            assert_eq!(page.raw(), serial[pid].as_slice(), "page {pid}");
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn append_after_reopen_continues_the_tail_page() {
        let path = temp_path("reopen");
        let _cleanup = Cleanup(path.clone());
        {
            let mut h = DiskHeapFile::create(&path, 256, b"").unwrap();
            for i in 0..5u8 {
                h.append(&[i; 20]).unwrap();
            }
            h.sync().unwrap();
        }
        {
            let mut h = DiskHeapFile::open(&path).unwrap();
            let pages_before = h.num_pages();
            h.append(&[99u8; 20]).unwrap();
            // A 256-byte page holds more than 6 records of 20 bytes, so the
            // append lands on the existing tail page.
            assert_eq!(h.num_pages(), pages_before);
            h.sync().unwrap();
        }
        let h = DiskHeapFile::open(&path).unwrap();
        assert_eq!(h.num_records(), 6);
        let page = h.read_page(0).unwrap();
        assert_eq!(page.get(5).unwrap(), &[99u8; 20]);
    }

    #[test]
    fn unsynced_tail_is_readable_in_memory() {
        let path = temp_path("tail");
        let _cleanup = Cleanup(path.clone());
        let mut h = DiskHeapFile::create(&path, 256, b"").unwrap();
        let rid = h.append(b"unsynced").unwrap();
        let page = h.read_page(rid.page).unwrap();
        assert_eq!(page.get(rid.slot).unwrap(), b"unsynced");
    }

    #[test]
    fn tail_page_reads_borrow_the_write_buffer_without_copying() {
        let path = temp_path("tail_nocopy");
        let _cleanup = Cleanup(path.clone());
        let mut h = DiskHeapFile::create(&path, 256, b"").unwrap();
        for i in 0..20u8 {
            h.append(&[i; 24]).unwrap();
        }
        let tail_id = h.num_pages() as PageId - 1;
        let read = h.read_page_ref(tail_id).unwrap();
        assert!(read.is_borrowed(), "tail must be lent, not cloned");
        // The borrowed view is literally the in-memory write buffer.
        assert!(std::ptr::eq(
            read.as_page(),
            h.tail.as_ref().expect("tail resident while appending")
        ));
        drop(read);
        // Flushed pages cannot be borrowed: they come back owned from disk.
        if tail_id > 0 {
            assert!(!h.read_page_ref(0).unwrap().is_borrowed());
        }
        // The owned compatibility path still serves the same bytes.
        let owned = h.read_page(tail_id).unwrap();
        assert_eq!(owned.raw(), h.read_page_ref(tail_id).unwrap().raw());
    }

    #[test]
    fn physical_reads_recycle_pooled_buffers() {
        let path = temp_path("pool");
        let _cleanup = Cleanup(path.clone());
        {
            let mut h = DiskHeapFile::create(&path, 256, b"").unwrap();
            for i in 0..60u8 {
                h.append(&[i; 24]).unwrap();
            }
            h.sync().unwrap();
        }
        let h = DiskHeapFile::open(&path).unwrap();
        assert_eq!(h.pool().pooled(), 0);
        h.read_page(0).unwrap();
        assert_eq!(h.pool().pooled(), 1, "scratch buffer returns to the pool");
        let generation = h.pool().generation();
        for pid in 0..h.num_pages() {
            h.read_page(pid as PageId).unwrap();
        }
        // Serial reads reuse one scratch buffer instead of growing the pool.
        assert_eq!(h.pool().pooled(), 1);
        assert_eq!(h.pool().generation(), generation);
    }

    #[test]
    fn sync_fences_the_scratch_pool() {
        let path = temp_path("pool_fence");
        let _cleanup = Cleanup(path.clone());
        let mut h = DiskHeapFile::create(&path, 256, b"").unwrap();
        for i in 0..60u8 {
            h.append(&[i; 24]).unwrap();
        }
        h.sync().unwrap();
        let generation = h.pool().generation();
        h.read_page(0).unwrap();
        assert_eq!(h.pool().pooled(), 1);
        h.append(&[61u8; 24]).unwrap();
        h.sync().unwrap();
        // The layout changed: pooled scratch buffers were retired.
        assert!(h.pool().generation() > generation);
        assert_eq!(h.pool().pooled(), 0);
        // Reads keep working (and repopulate the pool) afterwards.
        h.read_page(0).unwrap();
        assert_eq!(h.pool().pooled(), 1);
    }

    #[test]
    fn drop_syncs_pending_writes() {
        let path = temp_path("drop");
        let _cleanup = Cleanup(path.clone());
        {
            let mut h = DiskHeapFile::create(&path, 256, b"").unwrap();
            h.append(b"persisted-by-drop").unwrap();
        }
        let h = DiskHeapFile::open(&path).unwrap();
        assert_eq!(h.num_records(), 1);
        assert_eq!(
            h.read_page(0).unwrap().get(0).unwrap(),
            b"persisted-by-drop"
        );
    }

    #[test]
    fn out_of_range_and_oversized_are_errors() {
        let path = temp_path("errors");
        let _cleanup = Cleanup(path.clone());
        let mut h = DiskHeapFile::create(&path, 128, b"").unwrap();
        assert!(matches!(
            h.read_page(0),
            Err(StorageError::InvalidRid { .. })
        ));
        assert!(matches!(
            h.append(&[0u8; 4096]),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn corrupted_page_fails_checksum_on_read() {
        let path = temp_path("corrupt");
        let _cleanup = Cleanup(path.clone());
        {
            let mut h = DiskHeapFile::create(&path, 256, b"").unwrap();
            for i in 0..30u8 {
                h.append(&[i; 30]).unwrap();
            }
            h.sync().unwrap();
        }
        // Flip one byte in the middle of page 1's payload.
        let header_len;
        {
            let h = DiskHeapFile::open(&path).unwrap();
            assert!(h.num_pages() >= 2);
            header_len = h.header().page_offset(1) + 100;
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[header_len as usize] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();

        let h = DiskHeapFile::open(&path).unwrap();
        assert!(h.read_page(0).is_ok(), "untouched page still reads");
        let err = h.read_page(1).unwrap_err();
        assert!(
            matches!(err, StorageError::PageCorruption(_)),
            "expected checksum failure, got {err:?}"
        );
    }

    #[test]
    fn open_touches_no_data_pages_even_if_the_tail_is_corrupt() {
        let path = temp_path("lazy_open");
        let _cleanup = Cleanup(path.clone());
        let last_page_offset;
        {
            let mut h = DiskHeapFile::create(&path, 256, b"").unwrap();
            for i in 0..30u8 {
                h.append(&[i; 30]).unwrap();
            }
            h.sync().unwrap();
            last_page_offset = h.header().page_offset(h.num_pages() as PageId - 1);
        }
        // Corrupt the LAST page.  A read-only open must still succeed
        // (metadata only); the failure surfaces on access.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[last_page_offset as usize + 40] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();

        let mut h = DiskHeapFile::open(&path).unwrap();
        let last = h.num_pages() as PageId - 1;
        assert!(h.read_page(0).is_ok());
        assert!(matches!(
            h.read_page(last),
            Err(StorageError::PageCorruption(_))
        ));
        // Appending needs the tail page, so it must fail too (not silently
        // overwrite the corrupt page).
        assert!(h.append(&[1u8; 30]).is_err());
    }

    #[test]
    fn absurd_header_counts_are_rejected_without_allocating() {
        let path = temp_path("absurd_header");
        let _cleanup = Cleanup(path.clone());
        {
            let mut h = DiskHeapFile::create(&path, 256, b"meta").unwrap();
            h.append(&[7u8; 30]).unwrap();
            h.sync().unwrap();
        }
        // Forge a huge data_offset (and therefore implied length) in the
        // header; open must reject it via the file-length check instead of
        // trying to allocate/read data_offset bytes.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[28..36].copy_from_slice(&(1u64 << 62).to_be_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            DiskHeapFile::open(&path),
            Err(StorageError::InvalidFormat(_))
        ));

        // Same for a forged astronomical page count.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[12..20].copy_from_slice(&u64::MAX.to_be_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            DiskHeapFile::open(&path),
            Err(StorageError::InvalidFormat(_))
        ));
    }

    #[test]
    fn truncated_file_is_rejected_on_open() {
        let path = temp_path("truncated");
        let _cleanup = Cleanup(path.clone());
        {
            let mut h = DiskHeapFile::create(&path, 256, b"").unwrap();
            for i in 0..30u8 {
                h.append(&[i; 30]).unwrap();
            }
            h.sync().unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        assert!(DiskHeapFile::open(&path).is_err());
    }
}
