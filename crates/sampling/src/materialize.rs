//! Materialized samples: a drawn sample as a first-class, reusable object.
//!
//! The paper's motivating workflow (Section I) evaluates *many* candidate
//! indexes, and the expensive part of each evaluation is drawing the sample —
//! on a disk-resident table that is real I/O.  Re-sampling per candidate
//! multiplies that cost for no statistical benefit when the candidates share
//! a (sampler, fraction, seed) configuration.  A [`MaterializedSample`] pays
//! the I/O exactly once: it draws through any [`TableSource`] and keeps the
//! sampled rows as an owned in-memory [`Table`], so every later consumer
//! (one per candidate index × compression scheme) works from memory.
//!
//! Exactness matters more than convenience here: the advisor promises
//! estimates that are byte-identical to re-running the sampler with the same
//! seed.  The sample therefore remembers the RID each row came from, and
//! [`rows`](MaterializedSample::rows) reconstructs the exact `(Rid, Row)`
//! sequence the sampler produced — same rows, same order, same duplicates.

use crate::error::SamplingResult;
use crate::kind::SamplerKind;
use crate::sampler::SampledRow;
use rand::rngs::StdRng;
use rand::SeedableRng;
use samplecf_storage::{Rid, Table, TableSource};

/// An owned, in-memory copy of one drawn sample, tagged with everything
/// needed to reproduce or share it.
#[derive(Debug, Clone)]
pub struct MaterializedSample {
    table: Table,
    source_rids: Vec<Rid>,
    source_name: String,
    source_rows: usize,
    source_pages: usize,
    kind: SamplerKind,
    seed: u64,
}

impl MaterializedSample {
    /// Draw a sample from `source` with the given sampler and seed, and
    /// materialize it in memory.
    ///
    /// The RNG is seeded exactly like
    /// `SampleCf::estimate` (`StdRng::seed_from_u64(seed)`), so a
    /// materialized sample and a direct estimator run with the same
    /// `(kind, seed)` see identical rows.  All source I/O happens inside
    /// this call; wrap `source` in a
    /// [`CountingSource`](samplecf_storage::CountingSource) to measure it.
    pub fn draw(
        source: &dyn TableSource,
        kind: SamplerKind,
        seed: u64,
    ) -> SamplingResult<MaterializedSample> {
        let sampler = kind.build()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let sampled = sampler.sample(source, &mut rng)?;

        let mut table = Table::with_page_size(
            format!("{}#sample", source.name()),
            source.schema().clone(),
            source.page_size(),
        )?;
        let mut source_rids = Vec::with_capacity(sampled.len());
        for (rid, row) in &sampled {
            table.insert(row)?;
            source_rids.push(*rid);
        }
        Ok(MaterializedSample {
            table,
            source_rids,
            source_name: source.name().to_string(),
            source_rows: source.num_rows(),
            source_pages: source.num_pages(),
            kind,
            seed,
        })
    }

    /// The sampled rows as an owned in-memory table (named
    /// `<source>#sample`).  Because [`Table`] implements [`TableSource`],
    /// the sample itself can feed any consumer that reads tables.
    #[must_use]
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Reconstruct the exact `(Rid, Row)` pairs the sampler produced, in
    /// draw order, with each row's RID in the *source* table.
    ///
    /// This is what makes sharing lossless: feeding these rows to the
    /// estimator yields byte-identical results to sampling directly with the
    /// same seed.
    pub fn rows(&self) -> SamplingResult<Vec<SampledRow>> {
        // `draw` inserts exactly one table row per recorded rid and the
        // struct is immutable afterwards, so the two sides always align.
        debug_assert_eq!(self.table.num_rows(), self.source_rids.len());
        Ok(self
            .source_rids
            .iter()
            .zip(self.table.scan())
            .map(|(&source_rid, (_, row))| (source_rid, row))
            .collect())
    }

    /// Number of sampled rows (duplicates counted, as drawn).
    #[must_use]
    pub fn len(&self) -> usize {
        self.source_rids.len()
    }

    /// Whether the sample is empty (an empty source yields an empty sample).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.source_rids.is_empty()
    }

    /// Name of the table the sample was drawn from.
    #[must_use]
    pub fn source_name(&self) -> &str {
        &self.source_name
    }

    /// Row count of the source table at draw time (the paper's `n`).
    #[must_use]
    pub fn source_rows(&self) -> usize {
        self.source_rows
    }

    /// Page count of the source table at draw time.
    #[must_use]
    pub fn source_pages(&self) -> usize {
        self.source_pages
    }

    /// The sampler configuration the sample was drawn with.
    #[must_use]
    pub fn kind(&self) -> SamplerKind {
        self.kind
    }

    /// The RNG seed the sample was drawn with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samplecf_storage::{CountingSource, Row, Schema, TableBuilder, Value};

    fn table(n: usize) -> Table {
        TableBuilder::new("t", Schema::single_char("a", 32))
            .page_size(512)
            .build_with_rows((0..n).map(|i| Row::new(vec![Value::str(format!("v{i:06}"))])))
            .unwrap()
    }

    #[test]
    fn materialized_rows_equal_a_direct_draw_with_the_same_seed() {
        let t = table(2_000);
        for kind in [
            SamplerKind::UniformWithReplacement(0.05),
            SamplerKind::UniformWithoutReplacement(0.05),
            SamplerKind::Bernoulli(0.05),
            SamplerKind::Systematic(0.05),
            SamplerKind::Reservoir(97),
            SamplerKind::Block(0.05),
        ] {
            let direct = kind
                .build()
                .unwrap()
                .sample(&t, &mut StdRng::seed_from_u64(42))
                .unwrap();
            let sample = MaterializedSample::draw(&t, kind, 42).unwrap();
            assert_eq!(sample.rows().unwrap(), direct, "{kind:?}");
            assert_eq!(sample.len(), direct.len());
            assert_eq!(sample.kind(), kind);
            assert_eq!(sample.seed(), 42);
        }
    }

    #[test]
    fn with_replacement_duplicates_survive_materialization() {
        let t = table(50);
        // A 100% with-replacement sample of a small table almost surely
        // draws some rid twice.
        let sample =
            MaterializedSample::draw(&t, SamplerKind::UniformWithReplacement(1.0), 7).unwrap();
        assert_eq!(sample.len(), 50);
        let rows = sample.rows().unwrap();
        let mut rids: Vec<Rid> = rows.iter().map(|(rid, _)| *rid).collect();
        rids.sort_unstable();
        rids.dedup();
        assert!(rids.len() < 50, "expected duplicate draws, got none");
    }

    #[test]
    fn drawing_pays_the_io_once_and_reuse_is_free() {
        let t = table(3_000);
        let counting = CountingSource::new(&t);
        let sample = MaterializedSample::draw(&counting, SamplerKind::Block(0.1), 3).unwrap();
        let pages_after_draw = counting.pages_read();
        assert!(pages_after_draw > 0);
        // Re-reading the materialized rows touches the source no further.
        for _ in 0..5 {
            let rows = sample.rows().unwrap();
            assert_eq!(rows.len(), sample.len());
        }
        assert_eq!(counting.pages_read(), pages_after_draw);
    }

    #[test]
    fn sample_metadata_describes_the_source() {
        let t = table(1_000);
        let sample =
            MaterializedSample::draw(&t, SamplerKind::UniformWithReplacement(0.01), 0).unwrap();
        assert_eq!(sample.source_name(), "t");
        assert_eq!(sample.source_rows(), 1_000);
        assert_eq!(sample.source_pages(), t.num_pages());
        assert_eq!(sample.table().name(), "t#sample");
        assert!(!sample.is_empty());
        assert_eq!(sample.table().num_rows(), sample.len());
    }

    #[test]
    fn empty_source_yields_an_empty_sample() {
        let t = TableBuilder::new("empty", Schema::single_char("a", 8))
            .build()
            .unwrap();
        let sample = MaterializedSample::draw(&t, SamplerKind::Block(0.5), 1).unwrap();
        assert!(sample.is_empty());
        assert_eq!(sample.rows().unwrap(), Vec::new());
    }
}
