//! Strata: contiguous page-range partitions of a table.
//!
//! Stratified sampling (Yu's index-assisted stratification, Nirkhiwale et
//! al.'s sampling algebra) needs a partition of the sampling frame before a
//! single row is drawn.  A [`Strata`] cuts a [`TableSource`]'s pages into
//! contiguous ranges, so each stratum is a physically local region — the
//! shape that pays off on value-clustered tables, where contiguous pages
//! hold similar values and the within-stratum variance of the compression
//! fraction collapses.
//!
//! Two constructors are provided:
//!
//! * [`Strata::equi_width`] — equal *page* counts per stratum.  This is the
//!   canonical partition the [`SamplerKind::Stratified`] configuration
//!   implies, because it is derivable from `(num_pages, count)` alone: any
//!   consumer holding only the sampler kind (a cache key, a wire request)
//!   can recompute which stratum a RID belongs to.
//! * [`Strata::equi_depth`] — equal *row* counts per stratum, with
//!   boundaries still on page edges.  On uniformly packed pages the two
//!   coincide; on ragged fills equi-depth equalises the statistical weight
//!   `W_s = N_s/N` instead of the physical extent.
//!
//! Both are computed from the metadata-backed RID frame
//! ([`TableSource::rids`]) — no data page is read to build a partition.
//!
//! [`SamplerKind::Stratified`]: crate::SamplerKind::Stratified

use crate::error::{SamplingError, SamplingResult};
use samplecf_storage::{PageId, Rid, TableSource};

/// A partition of a table's pages into contiguous ranges, with the row
/// bookkeeping stratified estimators need (per-stratum row counts and
/// population weights `W_s = N_s / N`).
#[derive(Debug, Clone, PartialEq)]
pub struct Strata {
    /// Page boundaries: stratum `s` covers pages
    /// `page_bounds[s]..page_bounds[s+1]`.  `len() + 1` entries, strictly
    /// increasing, starting at 0 and ending at the page count.  Empty for an
    /// empty table (zero strata).
    page_bounds: Vec<usize>,
    /// Row-frame boundaries: stratum `s` covers frame positions
    /// `row_bounds[s]..row_bounds[s+1]` of the RID frame the strata were
    /// built from.
    row_bounds: Vec<usize>,
}

impl Strata {
    /// Partition `source`'s pages into `count` contiguous ranges of (as
    /// near as possible) equal page counts.
    ///
    /// `count` is clamped to the page count, so every stratum holds at
    /// least one page; an empty table yields zero strata.  Errors only on
    /// `count == 0` or a failed frame read.
    pub fn equi_width(source: &dyn TableSource, count: usize) -> SamplingResult<Strata> {
        let rids = source.rids()?;
        Self::equi_width_from_frame(&rids, source.num_pages(), count)
    }

    /// [`equi_width`](Self::equi_width) over an already-fetched RID frame
    /// (which must be in storage order, as [`TableSource::rids`] yields it).
    pub fn equi_width_from_frame(
        rids: &[Rid],
        num_pages: usize,
        count: usize,
    ) -> SamplingResult<Strata> {
        let count = validate_count(count, num_pages)?;
        if count == 0 {
            return Ok(Strata::empty());
        }
        // Page boundary s sits at round(s·P/count): ranges differ by at
        // most one page and tile [0, P) exactly.
        let page_bounds: Vec<usize> = (0..=count)
            .map(|s| ((s * num_pages) as f64 / count as f64).round() as usize)
            .collect();
        Ok(Self::from_page_bounds(rids, page_bounds))
    }

    /// Partition `source`'s pages into `count` contiguous ranges holding
    /// (as near as possible) equal *row* counts, with boundaries on page
    /// edges.
    ///
    /// Same clamping and edge behaviour as [`equi_width`](Self::equi_width).
    pub fn equi_depth(source: &dyn TableSource, count: usize) -> SamplingResult<Strata> {
        let rids = source.rids()?;
        Self::equi_depth_from_frame(&rids, source.num_pages(), count)
    }

    /// [`equi_depth`](Self::equi_depth) over an already-fetched RID frame.
    pub fn equi_depth_from_frame(
        rids: &[Rid],
        num_pages: usize,
        count: usize,
    ) -> SamplingResult<Strata> {
        let count = validate_count(count, num_pages)?;
        if count == 0 {
            return Ok(Strata::empty());
        }
        // Rows at or before each page boundary, from the frame alone.
        let mut cum_rows = vec![0usize; num_pages + 1];
        for rid in rids {
            cum_rows[rid.page as usize + 1] += 1;
        }
        for p in 0..num_pages {
            cum_rows[p + 1] += cum_rows[p];
        }
        let total = rids.len() as f64;
        let mut page_bounds = Vec::with_capacity(count + 1);
        page_bounds.push(0usize);
        for s in 1..count {
            let ideal = s as f64 * total / count as f64;
            // The candidate boundary must leave at least one page for every
            // stratum on both sides.
            let lo = page_bounds[s - 1] + 1;
            let hi = num_pages - (count - s);
            let best = (lo..=hi)
                .min_by(|&a, &b| {
                    let da = (cum_rows[a] as f64 - ideal).abs();
                    let db = (cum_rows[b] as f64 - ideal).abs();
                    da.partial_cmp(&db).expect("row counts are finite")
                })
                .expect("lo <= hi is guaranteed by count <= num_pages");
            page_bounds.push(best);
        }
        page_bounds.push(num_pages);
        Ok(Self::from_page_bounds(rids, page_bounds))
    }

    fn empty() -> Strata {
        Strata {
            page_bounds: Vec::new(),
            row_bounds: Vec::new(),
        }
    }

    fn from_page_bounds(rids: &[Rid], page_bounds: Vec<usize>) -> Strata {
        let row_bounds: Vec<usize> = page_bounds
            .iter()
            .map(|&p| rids.partition_point(|rid| (rid.page as usize) < p))
            .collect();
        Strata {
            page_bounds,
            row_bounds,
        }
    }

    /// Number of strata (zero for an empty table).
    #[must_use]
    pub fn len(&self) -> usize {
        self.page_bounds.len().saturating_sub(1)
    }

    /// Whether the partition has no strata.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The page range of stratum `s`.
    #[must_use]
    pub fn page_range(&self, s: usize) -> std::ops::Range<usize> {
        self.page_bounds[s]..self.page_bounds[s + 1]
    }

    /// The RID-frame index range of stratum `s` — the contiguous slice of
    /// the frame the stratum's rows live in.
    #[must_use]
    pub fn row_range(&self, s: usize) -> std::ops::Range<usize> {
        self.row_bounds[s]..self.row_bounds[s + 1]
    }

    /// Rows in stratum `s` (the paper-side `N_s`).
    #[must_use]
    pub fn rows(&self, s: usize) -> usize {
        self.row_bounds[s + 1] - self.row_bounds[s]
    }

    /// Total rows across all strata.
    #[must_use]
    pub fn total_rows(&self) -> usize {
        self.row_bounds.last().copied().unwrap_or(0)
    }

    /// Population weight `W_s = N_s / N` of stratum `s` — the coefficient
    /// of the stratum mean in the stratified estimator.
    #[must_use]
    pub fn weight(&self, s: usize) -> f64 {
        let total = self.total_rows();
        if total == 0 {
            0.0
        } else {
            self.rows(s) as f64 / total as f64
        }
    }

    /// All population weights, in stratum order (they sum to 1 for a
    /// non-empty table).
    #[must_use]
    pub fn weights(&self) -> Vec<f64> {
        (0..self.len()).map(|s| self.weight(s)).collect()
    }

    /// The stratum containing `page`.  Panics if the partition is empty or
    /// the page is out of range.
    #[must_use]
    pub fn stratum_of_page(&self, page: PageId) -> usize {
        let p = page as usize;
        assert!(
            !self.is_empty() && p < *self.page_bounds.last().expect("non-empty"),
            "page {p} outside the partitioned range"
        );
        self.page_bounds.partition_point(|&b| b <= p) - 1
    }
}

fn validate_count(count: usize, num_pages: usize) -> SamplingResult<usize> {
    if count == 0 {
        return Err(SamplingError::InvalidSize(
            "stratum count must be at least 1".to_string(),
        ));
    }
    Ok(count.min(num_pages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use samplecf_storage::{Row, Schema, Table, TableBuilder, Value};

    fn table(n: usize) -> Table {
        TableBuilder::new("t", Schema::single_char("a", 32))
            .page_size(512)
            .build_with_rows((0..n).map(|i| Row::new(vec![Value::str(format!("v{i:06}"))])))
            .unwrap()
    }

    fn assert_partition(strata: &Strata, num_pages: usize, num_rows: usize) {
        let mut pages = 0;
        let mut rows = 0;
        for s in 0..strata.len() {
            let pr = strata.page_range(s);
            assert!(!pr.is_empty(), "stratum {s} holds no pages");
            pages += pr.len();
            rows += strata.rows(s);
            for p in pr {
                assert_eq!(strata.stratum_of_page(p as PageId), s);
            }
        }
        assert_eq!(pages, num_pages, "page ranges must tile the table");
        assert_eq!(rows, num_rows, "row ranges must cover every row");
        if num_rows > 0 {
            let weight_sum: f64 = strata.weights().iter().sum();
            assert!((weight_sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn equi_width_tiles_pages_exactly() {
        let t = table(1_000);
        for count in [1, 2, 3, 7, t.num_pages(), t.num_pages() * 3] {
            let strata = Strata::equi_width(&t, count).unwrap();
            assert_eq!(strata.len(), count.min(t.num_pages()));
            assert_partition(&strata, t.num_pages(), 1_000);
        }
    }

    #[test]
    fn equi_depth_balances_rows() {
        let t = table(1_000);
        let strata = Strata::equi_depth(&t, 4).unwrap();
        assert_partition(&strata, t.num_pages(), 1_000);
        // Uniformly packed pages: every stratum within one page of rows of
        // the ideal quarter.
        let per_page = 1_000 / t.num_pages() + 1;
        for s in 0..4 {
            let diff = strata.rows(s) as i64 - 250;
            assert!(diff.unsigned_abs() as usize <= per_page, "stratum {s}");
        }
    }

    #[test]
    fn degenerate_shapes() {
        let empty = table(0);
        let strata = Strata::equi_width(&empty, 5).unwrap();
        assert!(strata.is_empty());
        assert_eq!(strata.total_rows(), 0);
        assert!(Strata::equi_width(&table(10), 0).is_err());
        assert!(Strata::equi_depth(&table(10), 0).is_err());
        // One stratum == the whole table.
        let t = table(100);
        let one = Strata::equi_depth(&t, 1).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one.rows(0), 100);
        assert!((one.weight(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn equi_width_is_derivable_from_metadata_alone() {
        // The property the cache/wire path relies on: recomputing the
        // partition from (frame, page count, k) matches the source-based
        // constructor.
        let t = table(700);
        let rids = samplecf_storage::TableSource::rids(&t).unwrap();
        let a = Strata::equi_width(&t, 5).unwrap();
        let b = Strata::equi_width_from_frame(&rids, t.num_pages(), 5).unwrap();
        assert_eq!(a, b);
    }
}
