//! Runs the zero-copy kernel experiment (borrowed records + size-only
//! measurement vs owned rows + materialised compression, rows/sec per
//! scheme) and writes its report under `results/` plus the
//! `BENCH_kernels.json` baseline.

use samplecf_bench::experiments::{kernels, quick_mode};

fn main() {
    let report = kernels::run(quick_mode());
    let path = report.finish().expect("writing the report succeeds");
    eprintln!("report written to {}", path.display());
}
