//! **Zero-copy kernel experiment** — the tentpole claim of the batched
//! measure path: sizing a sample index's compression *without producing a
//! byte of it* ([`measure_index`]) must process at least **5×** the
//! rows/sec of materialising every compressed column ([`compress_index`]),
//! summed across all registered schemes.  The full pipelines around the
//! kernels are timed too: borrowed records
//! ([`MaterializedSample::records`] → [`IndexBuilder::build_from_records`]
//! → measure) against the byte-producing route the estimator used before
//! (re-materialise owned `(Rid, Row)` pairs → bulk-load from rows →
//! compress).
//!
//! Both routes run over the *same* drawn sample and the reports they
//! produce are asserted equal before any clock starts — the speedups are
//! measured on provably identical answers.  A machine-readable baseline
//! goes to `BENCH_kernels.json` (override with `SAMPLECF_BENCH_KERNELS`)
//! so CI can compare future runs against the committed trajectory.

use crate::report::{fmt, Report, Table};
use samplecf_compression::{scheme_by_name, scheme_names};
use samplecf_datagen::presets;
use samplecf_index::{compress_index, measure_index, IndexBuilder, IndexSpec};
use samplecf_obs::{Histogram as ObsHistogram, MetricsRegistry, Timer};
use samplecf_sampling::{MaterializedSample, SamplerKind};
use samplecf_server::Json;
use std::hint::black_box;
use std::time::Instant;

const FRACTION: f64 = 0.25;
const SEED: u64 = 41;

/// One scheme's timing outcome.
struct Outcome {
    scheme: &'static str,
    /// Seconds materialising the compressed columns ([`compress_index`]).
    compress_secs: f64,
    /// Seconds sizing them without materialisation ([`measure_index`]).
    measure_secs: f64,
    /// Seconds for the full byte pipeline (decode rows → build → compress).
    bytes_pipeline_secs: f64,
    /// Seconds for the full zero-copy pipeline (borrow → build → measure).
    kernel_pipeline_secs: f64,
}

/// Run the experiment.
#[allow(clippy::cast_precision_loss)]
pub fn run(quick: bool) -> Report {
    let rows = if quick { 20_000 } else { 80_000 };
    let iters = if quick { 8 } else { 24 };
    let spec = IndexSpec::nonclustered("idx_a", ["a"]).expect("valid spec");

    // Variable-length values with a mid-sized dictionary: every scheme has
    // real work to do (padding to strip, runs to collapse, codes to size).
    let table = presets::variable_length_table("kern", rows, 40, rows / 50, 4, 36, 9)
        .generate()
        .expect("generation succeeds")
        .table;
    let sample =
        MaterializedSample::draw(&table, SamplerKind::UniformWithReplacement(FRACTION), SEED)
            .expect("sampling succeeds");
    let sampled_rows = sample.table().num_rows();
    let schema = sample.table().schema();
    let builder = IndexBuilder::new();

    // One index per build path, shared by every scheme below.  The measure
    // kernels are timed on the record-built index — the one the zero-copy
    // estimator actually hands them.
    let oracle_rows = sample.rows().expect("decoding the sample succeeds");
    let oracle_index = builder
        .build_from_rows(schema, &oracle_rows, &spec)
        .expect("row build succeeds");
    let records = sample.records().expect("borrowing the sample succeeds");
    let index = builder
        .build_from_records(schema, &records, &spec)
        .expect("record build succeeds");
    drop(oracle_rows);

    let mut outcomes = Vec::new();
    for name in scheme_names() {
        let scheme = scheme_by_name(name).expect("registered scheme");

        // Correctness gate: the kernels must agree with the byte path on
        // this exact sample — across both build paths — before their speed
        // means anything.
        let oracle = compress_index(&oracle_index, scheme.as_ref()).expect("compression succeeds");
        let measured = measure_index(&index, scheme.as_ref()).expect("measure succeeds");
        assert_eq!(measured, oracle, "kernels must be bit-identical ({name})");

        // Headline: the measurement kernels on the same built index.
        let start = Instant::now();
        for _ in 0..iters {
            let report = compress_index(&index, scheme.as_ref()).expect("compression succeeds");
            black_box(report.compressed_data_bytes());
        }
        let compress_secs = start.elapsed().as_secs_f64();
        let start = Instant::now();
        for _ in 0..iters {
            let report = measure_index(&index, scheme.as_ref()).expect("measure succeeds");
            black_box(report.compressed_data_bytes());
        }
        let measure_secs = start.elapsed().as_secs_f64();

        // Secondary: the full pipelines, from cached sample to CF-ready
        // report.  The byte route re-materialises owned rows every time —
        // exactly what `estimate_materialized` used to do.
        let start = Instant::now();
        for _ in 0..iters {
            let rows = sample.rows().expect("decoding the sample succeeds");
            let built = builder
                .build_from_rows(schema, &rows, &spec)
                .expect("row build succeeds");
            let report = compress_index(&built, scheme.as_ref()).expect("compression succeeds");
            black_box(report.compressed_data_bytes());
        }
        let bytes_pipeline_secs = start.elapsed().as_secs_f64();
        let start = Instant::now();
        for _ in 0..iters {
            let records = sample.records().expect("borrowing the sample succeeds");
            let built = builder
                .build_from_records(schema, &records, &spec)
                .expect("record build succeeds");
            let report = measure_index(&built, scheme.as_ref()).expect("measure succeeds");
            black_box(report.compressed_data_bytes());
        }
        let kernel_pipeline_secs = start.elapsed().as_secs_f64();

        outcomes.push(Outcome {
            scheme: name,
            compress_secs,
            measure_secs,
            bytes_pipeline_secs,
            kernel_pipeline_secs,
        });
    }

    // Overall ratios with every scheme weighted by its own cost: total
    // wall-clock per route, across all schemes.
    let kernel_speedup = outcomes.iter().map(|o| o.compress_secs).sum::<f64>()
        / outcomes.iter().map(|o| o.measure_secs).sum::<f64>();
    let end_to_end_speedup = outcomes.iter().map(|o| o.bytes_pipeline_secs).sum::<f64>()
        / outcomes.iter().map(|o| o.kernel_pipeline_secs).sum::<f64>();

    // The acceptance claims, enforced so CI fails loudly on regression.
    let kernel_floor = if quick { 2.0 } else { 5.0 };
    assert!(
        kernel_speedup >= kernel_floor,
        "measure kernels must be at least {kernel_floor}x compress, got {kernel_speedup:.2}x"
    );
    let pipeline_floor = if quick { 1.2 } else { 1.5 };
    assert!(
        end_to_end_speedup >= pipeline_floor,
        "the zero-copy pipeline must be at least {pipeline_floor}x the byte pipeline, \
         got {end_to_end_speedup:.2}x"
    );
    // The dictionary schemes were the slowest kernels (2.8–4.3x) before the
    // open-addressing scratch table replaced their per-chunk hash maps;
    // they must now keep up with the rest of the field.
    let dictionary_floor = if quick { 4.0 } else { 6.0 };
    for o in outcomes
        .iter()
        .filter(|o| o.scheme.starts_with("dictionary"))
    {
        let speedup = o.compress_secs / o.measure_secs;
        assert!(
            speedup >= dictionary_floor,
            "{} kernel must be at least {dictionary_floor}x compress, got {speedup:.2}x",
            o.scheme
        );
    }

    // ---- Build-dominated section: the bulk load serial vs parallel ----
    //
    // With measurement arithmetic, the encode + sort + leaf-pack bulk load
    // dominates the end-to-end pipeline; this times it on one thread vs a
    // strided pool, after asserting the two builds are byte-identical.
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let parallel_threads = crate::experiments::thread_override().unwrap_or(4);
    let serial_builder = IndexBuilder::new().threads(1);
    let parallel_builder = IndexBuilder::new().threads(parallel_threads);
    let parallel_index = parallel_builder
        .build_from_records(schema, &records, &spec)
        .expect("parallel record build succeeds");
    assert_eq!(index.num_leaf_pages(), parallel_index.num_leaf_pages());
    for (a, b) in index.leaf_pages().iter().zip(parallel_index.leaf_pages()) {
        assert_eq!(
            a.raw(),
            b.raw(),
            "parallel build diverged from serial on leaf {}",
            a.id()
        );
    }
    drop(parallel_index);

    // Min-of-iters build time per route; the minimum is the stable statistic
    // on a shared machine.
    let build_time = |b: &IndexBuilder| {
        (0..iters)
            .map(|_| {
                let start = Instant::now();
                let built = b
                    .build_from_records(schema, &records, &spec)
                    .expect("record build succeeds");
                black_box(built.num_leaf_pages());
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let default_build_secs = build_time(&builder);
    let serial_build_secs = build_time(&serial_builder);
    let parallel_build_secs = build_time(&parallel_builder);
    let build_speedup = serial_build_secs / parallel_build_secs;

    // Single-thread no-regression: `threads(1)` must be the serial path, not
    // a one-worker pool — within noise of the default builder.  Quick-mode
    // builds are ~2 ms, so the noise band is wider there; the full run is
    // the meaningful gate.
    let parity_band = if quick { 1.35 } else { 1.10 };
    assert!(
        serial_build_secs <= default_build_secs * parity_band
            && default_build_secs <= serial_build_secs * parity_band,
        "threads(1) must match the serial bulk load within {:.0}%: \
         {serial_build_secs:.6}s vs {default_build_secs:.6}s",
        (parity_band - 1.0) * 100.0
    );
    // Scaling is asserted only where there are cores to scale onto.
    if cores > 1 && parallel_threads != 1 {
        let scaling_floor = if cores >= 4 && (parallel_threads >= 4 || parallel_threads == 0) {
            2.5
        } else {
            1.15
        };
        assert!(
            build_speedup >= scaling_floor,
            "parallel bulk load at {parallel_threads} threads must be at least \
             {scaling_floor}x serial on {cores} cores, got {build_speedup:.2}x"
        );
    }

    // ---- Observability overhead guard ----
    //
    // The server wraps this exact measure path in histogram timers
    // (`samplecf_progressive_measure_ns` et al.).  The instruments must be
    // effectively free: one timed sweep of every scheme's measure kernel
    // recording into a live registry histogram, against the same sweep
    // through a registry-disabled (no-op) handle.  Both pay the
    // `Timer::start` clock read; the enabled run adds the bucket index and
    // three relaxed atomic adds per record.  Min-of-repeats is the stable
    // statistic; the 3% ceiling is asserted in full mode (quick-mode
    // sweeps are too short to separate from scheduler noise).
    let registry = MetricsRegistry::new();
    let enabled_hist = registry.histogram("bench_measure_ns");
    let disabled_hist = ObsHistogram::disabled();
    let sweep = |hist: &ObsHistogram| {
        (0..3)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    for name in scheme_names() {
                        let scheme = scheme_by_name(name).expect("registered scheme");
                        let _timer = Timer::start(hist);
                        let report =
                            measure_index(&index, scheme.as_ref()).expect("measure succeeds");
                        black_box(report.compressed_data_bytes());
                    }
                }
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let disabled_secs = sweep(&disabled_hist);
    let enabled_secs = sweep(&enabled_hist);
    let obs_overhead_ratio = enabled_secs / disabled_secs;
    if !quick {
        assert!(
            obs_overhead_ratio <= 1.03,
            "instrumented measure path must stay within 3% of the registry-disabled run, \
             got {obs_overhead_ratio:.4}x ({enabled_secs:.6}s vs {disabled_secs:.6}s)"
        );
    }

    let processed = (sampled_rows * iters) as f64;
    let mut report = Report::new("exp_kernels");
    let mut t = Table::new(
        format!(
            "Measure-without-encode throughput on a {sampled_rows}-row sample index \
             (f = {FRACTION} of n = {rows}, {iters} iterations/scheme): size-only kernels \
             vs materialised compression, plus the full pipelines around them"
        ),
        &[
            "scheme",
            "compress rows/s",
            "measure rows/s",
            "kernel speedup",
            "pipeline speedup",
        ],
    );
    for o in &outcomes {
        t.row(&[
            o.scheme.to_string(),
            fmt(processed / o.compress_secs),
            fmt(processed / o.measure_secs),
            format!("{:.2}x", o.compress_secs / o.measure_secs),
            format!("{:.2}x", o.bytes_pipeline_secs / o.kernel_pipeline_secs),
        ]);
    }
    t.note(format!(
        "Measured shape: materialised compression pays for every encoded byte it will \
         immediately throw away — the estimator only reads the sizes.  The measure kernels \
         compute those sizes arithmetically (run heads, code widths, stripped padding) and \
         processed {kernel_speedup:.1}x the rows/sec across all schemes (floor: \
         {kernel_floor}x).  The dictionary schemes count distinct cells through a reused \
         open-addressing scratch table instead of a per-chunk hash map (floor: \
         {dictionary_floor}x, from 2.8–4.3x before).  End to end the zero-copy pipeline — \
         borrow records where the sample cache already holds them, bulk-load from the \
         borrowed slices, measure — ran {end_to_end_speedup:.1}x the byte-producing route; \
         the remaining gap is the index build itself, which the section below parallelises."
    ));
    report.add(t);

    let mut b = Table::new(
        format!(
            "Build-dominated section: bulk load (encode + radix partition + per-partition \
             sort + leaf pack) of the {sampled_rows}-row sample, serial vs {parallel_threads} \
             threads on {cores} available core(s); min of {iters} builds per route"
        ),
        &["route", "rows/s", "speedup vs serial"],
    );
    b.row(&[
        "serial (threads = 1)".to_string(),
        fmt(sampled_rows as f64 / serial_build_secs),
        "1.00x".to_string(),
    ]);
    b.row(&[
        format!("parallel (threads = {parallel_threads})"),
        fmt(sampled_rows as f64 / parallel_build_secs),
        format!("{build_speedup:.2}x"),
    ]);
    b.row(&[
        "dictionary distinct-count kernels (paged / global)".to_string(),
        "—".to_string(),
        outcomes
            .iter()
            .filter(|o| o.scheme.starts_with("dictionary"))
            .map(|o| format!("{:.2}x", o.compress_secs / o.measure_secs))
            .collect::<Vec<_>>()
            .join(" / "),
    ]);
    b.row(&[
        "observability overhead (measure sweep, enabled / disabled registry)".to_string(),
        "—".to_string(),
        format!("{obs_overhead_ratio:.4}x"),
    ]);
    b.note(
        "The parallel build radix-partitions entries by leading key byte (partitions are \
         disjoint key ranges, so per-partition sorts concatenate with no merge), then packs \
         leaves from a precomputed page split — byte-identical to the serial sort, asserted \
         before any clock starts.  Scaling is asserted only when more than one core is \
         available; on a single core the contract is no regression (threads(1) within 10% \
         of the serial path).  The observability row times the same measure sweep recording \
         into a live metrics-registry histogram against a registry-disabled no-op handle; \
         the full run asserts the instrumented path stays within 3%.",
    );
    report.add(b);

    write_bench_json(
        quick,
        rows,
        sampled_rows,
        iters,
        &outcomes,
        kernel_speedup,
        end_to_end_speedup,
        obs_overhead_ratio,
        &BulkloadOutcome {
            cores,
            parallel_threads,
            serial_build_secs,
            parallel_build_secs,
        },
    );
    write_determinism_digest(&sample, &spec);
    report
}

/// The build-dominated section's timing outcome.
struct BulkloadOutcome {
    cores: usize,
    parallel_threads: usize,
    serial_build_secs: f64,
    parallel_build_secs: f64,
}

/// FNV-1a over a byte stream — a stable, dependency-free digest.
fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(state, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// Write the thread-count determinism evidence (`SAMPLECF_KERNELS_DIGEST`):
/// a digest of every leaf page byte of an index built at the `--threads`
/// override, plus each scheme's full measured report.  CI runs the quick
/// experiment at `--threads 1` and `--threads 2` and diffs the two files
/// byte-for-byte — any divergence in the parallel pipeline shows up here
/// even if it never changes a headline number.
fn write_determinism_digest(sample: &MaterializedSample, spec: &IndexSpec) {
    let Ok(path) = std::env::var("SAMPLECF_KERNELS_DIGEST") else {
        return;
    };
    let threads = crate::experiments::thread_override().unwrap_or(1);
    let builder = IndexBuilder::new().threads(threads);
    let records = sample.records().expect("borrowing the sample succeeds");
    let index = builder
        .build_from_records(sample.table().schema(), &records, spec)
        .expect("record build succeeds");
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for page in index.leaf_pages() {
        digest = fnv1a(digest, page.raw());
    }
    let mut out = String::new();
    out.push_str(&format!(
        "entries={} leaves={} height={} leaf_fnv1a={digest:016x}\n",
        index.num_entries(),
        index.num_leaf_pages(),
        index.height(),
    ));
    for name in scheme_names() {
        let scheme = scheme_by_name(name).expect("registered scheme");
        let report = measure_index(&index, scheme.as_ref()).expect("measure succeeds");
        out.push_str(&format!("{name}: {report:?}\n"));
    }
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("determinism digest written to {path}");
    }
}

/// Persist the machine-readable baseline (`BENCH_kernels.json` at the
/// workspace root, `SAMPLECF_BENCH_KERNELS` to override).
#[allow(clippy::cast_precision_loss, clippy::too_many_arguments)]
fn write_bench_json(
    quick: bool,
    rows: usize,
    sampled_rows: usize,
    iters: usize,
    outcomes: &[Outcome],
    kernel_speedup: f64,
    end_to_end_speedup: f64,
    obs_overhead_ratio: f64,
    bulkload: &BulkloadOutcome,
) {
    let path = std::env::var("SAMPLECF_BENCH_KERNELS")
        .unwrap_or_else(|_| "BENCH_kernels.json".to_string());
    let round = |v: f64| (v * 100_000.0).round() / 100_000.0;
    let processed = (sampled_rows * iters) as f64;
    let mut results = Json::obj();
    for o in outcomes {
        results = results.field(
            o.scheme,
            Json::obj()
                .field(
                    "rows_per_sec_compress",
                    Json::Num((processed / o.compress_secs).round()),
                )
                .field(
                    "rows_per_sec_measure",
                    Json::Num((processed / o.measure_secs).round()),
                )
                .field(
                    "kernel_speedup",
                    Json::Num(round(o.compress_secs / o.measure_secs)),
                )
                .field(
                    "pipeline_speedup",
                    Json::Num(round(o.bytes_pipeline_secs / o.kernel_pipeline_secs)),
                ),
        );
    }
    let doc = Json::obj()
        .field("bench", Json::Str("kernels".to_string()))
        .field(
            "mode",
            Json::Str(if quick { "quick" } else { "full" }.to_string()),
        )
        .field(
            "config",
            Json::obj()
                .field("rows", Json::uint(rows as u64))
                .field("sampled_rows", Json::uint(sampled_rows as u64))
                .field("fraction", Json::Num(FRACTION))
                .field("iters", Json::uint(iters as u64)),
        )
        .field(
            "results",
            results
                .field("overall_speedup", Json::Num(round(kernel_speedup)))
                .field("end_to_end_speedup", Json::Num(round(end_to_end_speedup)))
                .field("obs_overhead_ratio", Json::Num(round(obs_overhead_ratio)))
                .field(
                    "bulkload",
                    Json::obj()
                        .field("cores", Json::uint(bulkload.cores as u64))
                        .field(
                            "parallel_threads",
                            Json::uint(bulkload.parallel_threads as u64),
                        )
                        .field(
                            "rows_per_sec_serial",
                            Json::Num((sampled_rows as f64 / bulkload.serial_build_secs).round()),
                        )
                        .field(
                            "rows_per_sec_parallel",
                            Json::Num((sampled_rows as f64 / bulkload.parallel_build_secs).round()),
                        )
                        .field(
                            "build_speedup",
                            Json::Num(round(
                                bulkload.serial_build_secs / bulkload.parallel_build_secs,
                            )),
                        ),
                ),
        );
    if let Err(e) = std::fs::write(&path, format!("{}\n", doc.pretty())) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("baseline written to {path}");
    }
}
