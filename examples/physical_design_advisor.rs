//! Compression-aware physical design: decide which indexes of a small
//! "orders" workload to compress, with and without a storage budget.
//!
//! This is the application that motivates the paper (Section I): automated
//! physical design tools need cheap, accurate estimates of compressed index
//! sizes in order to meet a storage bound.
//!
//! Run with: `cargo run --release --example physical_design_advisor`

use samplecf::prelude::*;

fn print_report(title: &str, report: &samplecf::core::AdvisorReport) {
    println!("== {title} ==");
    println!(
        "{:<14} {:<22} {:>14} {:>16} {:>8} {:>10}",
        "table", "index", "uncompressed", "est. compressed", "CF", "compress?"
    );
    for r in &report.recommendations {
        println!(
            "{:<14} {:<22} {:>14} {:>16} {:>8.3} {:>10}",
            r.table,
            r.index,
            r.uncompressed_bytes,
            r.estimated_compressed_bytes,
            r.estimated_cf,
            if r.compress { "yes" } else { "no" }
        );
    }
    println!(
        "total: {} bytes uncompressed -> {} bytes under the recommendations (budget: {})",
        report.total_uncompressed_bytes(),
        report.total_chosen_bytes(),
        report
            .budget_bytes
            .map_or("none".to_string(), |b| b.to_string())
    );
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small schema: a fact table plus an archive table.
    let orders = presets::orders_table("orders", 30_000, 1).generate()?.table;
    let archive = presets::variable_length_table("archive", 20_000, 64, 400, 6, 24, 2)
        .generate()?
        .table;

    let candidates = vec![
        Candidate {
            table: &orders,
            spec: IndexSpec::clustered("orders_pk", ["order_id"])?,
        },
        Candidate {
            table: &orders,
            spec: IndexSpec::nonclustered("orders_by_status", ["status"])?,
        },
        Candidate {
            table: &orders,
            spec: IndexSpec::nonclustered("orders_by_customer", ["customer"])?,
        },
        Candidate {
            table: &archive,
            spec: IndexSpec::nonclustered("archive_by_a", ["a"])?,
        },
    ];

    // Pass 1: no budget — compress whatever saves at least 20%.
    let advisor = CompressionAdvisor::new(AdvisorConfig {
        sampling_fraction: 0.01,
        min_saving_fraction: 0.20,
        budget_bytes: None,
        seed: 3,
    })?;
    let scheme = DictionaryCompression::default();
    let unconstrained = advisor.recommend(&candidates, &scheme)?;
    print_report(
        "No storage budget (compress when saving ≥ 20%)",
        &unconstrained,
    );

    // Pass 2: a tight budget forces more aggressive compression.
    let budget = unconstrained.total_uncompressed_bytes() * 6 / 10;
    let constrained = CompressionAdvisor::new(AdvisorConfig {
        sampling_fraction: 0.01,
        min_saving_fraction: 0.20,
        budget_bytes: Some(budget),
        seed: 3,
    })?;
    let constrained_report = constrained.recommend(&candidates, &scheme)?;
    print_report(
        &format!("Storage budget of {budget} bytes (60% of uncompressed)"),
        &constrained_report,
    );
    println!(
        "fits budget: {}",
        if constrained_report.fits_budget() {
            "yes"
        } else {
            "no"
        }
    );
    Ok(())
}
