//! Regenerates the `disk_block_io` experiment (on-disk block vs row sampling
//! I/O).  Pass `--quick` (or set `SAMPLECF_QUICK=1`) for a fast,
//! reduced-size run.

fn main() {
    let quick = samplecf_bench::experiments::quick_mode();
    let report = samplecf_bench::experiments::disk_block_io::run(quick);
    let path = report.finish().expect("writing the report succeeds");
    eprintln!("wrote {}", path.display());
}
