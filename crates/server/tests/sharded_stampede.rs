//! Stress tests for the **sharded** sample cache: a cross-table stampede
//! must still draw once per group and agree byte-for-byte with the serial
//! estimator, and eviction pressure in one shard must not disturb entries
//! resident in the others.

use samplecf_core::{CachedSample, SampleCf};
use samplecf_datagen::presets;
use samplecf_index::IndexSpec;
use samplecf_sampling::SamplerKind;
use samplecf_server::{CacheDisposition, ConcurrentSampleCache, DEFAULT_CACHE_BUDGET_BYTES};
use samplecf_storage::{IntoShared, SharedCountingSource, SharedSource, TableSource};
use std::sync::{Arc, Barrier};

fn counted_tables(count: usize, rows: usize) -> Vec<(Arc<SharedCountingSource>, SharedSource)> {
    (0..count)
        .map(|i| {
            let table =
                presets::single_char_table(&format!("st_{i}"), rows, 24, 40, 8, 900 + i as u64)
                    .generate()
                    .expect("generation succeeds")
                    .table;
            let counting = Arc::new(SharedCountingSource::new(table.into_shared()));
            let shared = Arc::clone(&counting) as SharedSource;
            (counting, shared)
        })
        .collect()
}

#[test]
fn a_cross_table_stampede_draws_once_per_group_and_matches_serial() {
    const THREADS: usize = 16;
    const SEEDS: [u64; 4] = [1, 2, 3, 4];
    let kind = SamplerKind::Block(0.2);
    let tables = counted_tables(4, 6_000);

    // The serial truth: one standalone draw per (table, seed) group.
    let serial: Vec<(usize, u64)> = (0..tables.len())
        .flat_map(|t| SEEDS.iter().map(move |&seed| (t, seed)))
        .collect();
    let serial_rows: Vec<_> = serial
        .iter()
        .map(|&(t, seed)| {
            CachedSample::draw(&tables[t].1, kind, seed)
                .expect("serial draw")
                .rows()
                .to_vec()
        })
        .collect();
    let expected_pages_per_table: Vec<u64> = tables
        .iter()
        .map(|(counting, shared)| {
            let per_draw = ((shared.num_pages() as f64) * 0.2).round().max(1.0) as u64;
            counting.reset();
            per_draw * SEEDS.len() as u64
        })
        .collect();

    // 16 threads sweep all 16 groups, each starting at a different
    // rotation so every group sees genuine cross-thread contention.
    let cache = ConcurrentSampleCache::with_shards(DEFAULT_CACHE_BUDGET_BYTES, 8);
    let barrier = Barrier::new(THREADS);
    let groups = serial.clone();
    let acquired: Vec<Vec<(usize, samplecf_server::AcquiredSample)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|thread| {
                    let cache = &cache;
                    let tables = &tables;
                    let groups = &groups;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        (0..groups.len())
                            .map(|step| {
                                let g = (step + thread) % groups.len();
                                let (t, seed) = groups[g];
                                let sample = cache
                                    .acquire(&tables[t].1, kind, seed)
                                    .expect("acquire succeeds");
                                (g, sample)
                            })
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

    // Byte-identical to the serial draw, for every thread and group.
    for per_thread in &acquired {
        for (g, sample) in per_thread {
            assert_eq!(
                sample.rows.as_slice(),
                serial_rows[*g].as_slice(),
                "group {g} diverged from the serial draw"
            );
        }
    }

    // Physically: each table's pages were read once per seed group, no
    // matter that 16 threads requested each group.
    for ((counting, _), expected) in tables.iter().zip(&expected_pages_per_table) {
        assert_eq!(counting.pages_read(), *expected);
    }

    // Cache accounting: one miss per group, everything else hits, and the
    // per-shard breakdown sums to the totals.
    let stats = cache.stats();
    assert_eq!(stats.misses, groups.len() as u64);
    assert_eq!(stats.hits, (THREADS * groups.len() - groups.len()) as u64);
    assert_eq!(stats.entries, groups.len());
    assert_eq!(stats.evictions, 0);
    let per_shard = cache.per_shard_stats();
    assert_eq!(per_shard.len(), 8);
    assert_eq!(
        per_shard.iter().map(|s| s.entries).sum::<usize>(),
        stats.entries
    );
    assert_eq!(
        per_shard.iter().map(|s| s.misses).sum::<u64>(),
        stats.misses
    );
    assert_eq!(per_shard.iter().map(|s| s.hits).sum::<u64>(), stats.hits);

    // And estimates measured from a cached sample are byte-identical to
    // the single-shot estimator, seed for seed.
    let (_, shared) = &tables[0];
    let spec = IndexSpec::nonclustered("idx", ["a"]).expect("valid spec");
    let scheme = samplecf_compression::NullSuppression;
    let direct = SampleCf::new(kind)
        .seed(SEEDS[0])
        .estimate(shared, &spec, &scheme)
        .expect("direct estimate");
    let handle = cache.acquire(shared, kind, SEEDS[0]).expect("cached");
    let from_cache = samplecf_core::measure_rows(
        shared.schema(),
        &handle.rows,
        &spec,
        &scheme,
        &samplecf_index::IndexBuilder::new(),
        kind.label(),
    )
    .expect("measure succeeds");
    assert_eq!(from_cache.cf, direct.cf);
    assert_eq!(from_cache.cf_with_pointers, direct.cf_with_pointers);
    assert_eq!(from_cache.data, direct.data);
}

#[test]
fn eviction_pressure_in_one_shard_leaves_the_others_untouched() {
    let tables = counted_tables(1, 4_000);
    let (_, shared) = &tables[0];
    let kind = SamplerKind::Block(0.1);

    // Bucket seeds by the shard they route to (the routing is public
    // precisely so tests can aim load at one shard).
    let probe = ConcurrentSampleCache::with_shards(1, 8);
    let mut by_shard: Vec<Vec<u64>> = vec![Vec::new(); 8];
    for seed in 0..256u64 {
        by_shard[probe.shard_of(shared, seed)].push(seed);
    }
    let hot = by_shard
        .iter()
        .position(|seeds| seeds.len() >= 8)
        .expect("some shard collects 8 of 256 seeds");
    let cold = (0..8)
        .find(|&s| s != hot && by_shard[s].len() >= 2)
        .expect("another shard collects 2 seeds");

    // Budget: every shard holds about two entries.  Block draws differ in
    // byte size seed to seed (variable-length values), and which seeds land
    // where changes run to run (routing hashes the source *address*), so
    // size the budget from the largest entry this test will actually insert
    // — otherwise an unlucky pair of large cold-shard entries overflows the
    // 2.5-entry budget and evicts without "pressure".
    let entry_bytes = [by_shard[cold][0], by_shard[cold][1], by_shard[hot][0]]
        .iter()
        .map(|&seed| {
            CachedSample::draw_streaming(shared, kind, seed)
                .expect("probe draw")
                .approx_bytes()
        })
        .max()
        .expect("non-empty");
    let cache = ConcurrentSampleCache::with_shards((2 * entry_bytes + entry_bytes / 2) * 8, 8);

    // Two residents in the cold shard...
    let cold_seeds = [by_shard[cold][0], by_shard[cold][1]];
    for seed in cold_seeds {
        assert_eq!(
            cache.acquire(shared, kind, seed).expect("fill").disposition,
            CacheDisposition::Miss
        );
    }
    // ...then eviction pressure aimed entirely at the hot shard.
    for &seed in by_shard[hot].iter().take(8) {
        cache.acquire(shared, kind, seed).expect("hot acquire");
    }

    let per_shard = cache.per_shard_stats();
    assert!(
        per_shard[hot].evictions >= 4,
        "hot shard should be evicting: {:?}",
        per_shard[hot]
    );
    for (s, stats) in per_shard.iter().enumerate() {
        if s != hot {
            assert_eq!(stats.evictions, 0, "shard {s} evicted without pressure");
        }
    }
    // The cold shard's residents are still hits.
    for seed in cold_seeds {
        assert_eq!(
            cache
                .acquire(shared, kind, seed)
                .expect("cold hit")
                .disposition,
            CacheDisposition::Hit,
            "cold-shard entry for seed {seed} was lost"
        );
    }
}

#[test]
fn a_tight_budget_stampede_stays_within_shard_budgets_and_never_wedges() {
    const THREADS: usize = 16;
    let tables = counted_tables(4, 2_000);
    let kind = SamplerKind::Block(0.2);
    let entry_bytes = CachedSample::draw_streaming(&tables[0].1, kind, 0)
        .expect("probe draw")
        .approx_bytes();
    // Roughly three entries per shard — constant eviction churn.
    let cache = ConcurrentSampleCache::with_shards(entry_bytes * 3 * 8, 8);

    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let cache = &cache;
            let tables = &tables;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for i in 0..200u64 {
                    // Half the ops revisit a small working set (hits under
                    // churn), half are fresh groups (forced evictions).
                    let seed = if i % 2 == 0 {
                        i % 8
                    } else {
                        thread as u64 * 1_000 + i
                    };
                    let table = &tables[(seed as usize) % tables.len()].1;
                    cache
                        .acquire(table, kind, seed)
                        .expect("acquire under churn");
                }
            });
        }
    });

    let stats = cache.stats();
    assert_eq!(stats.hits + stats.misses, (THREADS * 200) as u64);
    assert!(stats.evictions > 0, "the budget was never under pressure");
    // Each shard respects its own budget (one in-flight protected entry
    // of slack, same as the single-lock contract).
    for (s, shard) in cache.per_shard_stats().iter().enumerate() {
        assert!(
            shard.bytes <= shard.budget_bytes + entry_bytes * 2,
            "shard {s} exceeded its budget: {} > {} + slack",
            shard.bytes,
            shard.budget_bytes
        );
    }
}
