//! Analytical results from Section III of the paper.
//!
//! * **Theorem 1** (Null Suppression): SampleCF is unbiased and its standard
//!   deviation is at most `1 / (2·√r)` where `r = f·n` is the sample size.
//!   (The null-suppressed length of a tuple is bounded by the column width
//!   `k`, so the variance of a single draw of `ℓᵢ/k` is at most 1/4; a mean
//!   over `r` independent draws divides that by `r`.)  The paper's Example 1
//!   (n = 100M, r = 1M) gives a bound of 5·10⁻⁴.
//! * **Theorems 2 and 3** (Dictionary Compression, simplified global model):
//!   even though distinct-value estimation is hard in general, SampleCF's
//!   *ratio error* is small when `d` is small (`d = o(n)`, Theorem 2) and
//!   bounded by a constant when `d` is large (`d = Θ(n)`, Theorem 3).
//!
//! Besides the worst-case bounds, this module provides the *expected-value*
//! model of the dictionary-compression estimate under uniform value
//! frequencies, which the experiments compare against measurements.

use samplecf_compression::model::{global_dictionary_cf, TableModel};

/// Theorem 1: upper bound on the standard deviation of the Null-Suppression
/// estimate, as a function of the sample size `r`.
#[must_use]
pub fn ns_stddev_bound_for_sample(sample_rows: usize) -> f64 {
    if sample_rows == 0 {
        return f64::INFINITY;
    }
    1.0 / (2.0 * (sample_rows as f64).sqrt())
}

/// Theorem 1 stated in terms of the table size `n` and sampling fraction `f`
/// (`r = f·n`): `σ(CF'_NS) ≤ 1 / (2·√(f·n))`.
#[must_use]
pub fn ns_stddev_bound(rows: usize, fraction: f64) -> f64 {
    if rows == 0 || fraction <= 0.0 {
        return f64::INFINITY;
    }
    ns_stddev_bound_for_sample((rows as f64 * fraction).round() as usize)
}

/// Variance form of the Theorem 1 bound: `Var(CF'_NS) ≤ 1 / (4·f·n)` —
/// this is the entry in the paper's Table II.
#[must_use]
pub fn ns_variance_bound(rows: usize, fraction: f64) -> f64 {
    let s = ns_stddev_bound(rows, fraction);
    if s.is_finite() {
        s * s
    } else {
        f64::INFINITY
    }
}

/// Chebyshev multiplier for a two-sided confidence interval at the given
/// confidence level `1 − δ`: `z = 1/√δ`, so that `P(|X − E[X]| ≥ z·σ) ≤ δ`
/// for *any* distribution with standard deviation `σ`.
///
/// The progressive estimator's stopping rule is distribution-free on
/// purpose: Theorem 1 bounds the variance of the estimate but says nothing
/// about its shape, so Chebyshev is the inequality that matches the
/// paper's own style of guarantee.  Returns infinity for a degenerate
/// confidence of 1.0 (δ = 0 admits no finite interval).
#[must_use]
pub fn chebyshev_z(confidence: f64) -> f64 {
    let delta = 1.0 - confidence;
    if delta <= 0.0 {
        return f64::INFINITY;
    }
    if delta >= 1.0 {
        return 0.0;
    }
    1.0 / delta.sqrt()
}

/// Theorem 1 run backwards: the sample size `r` that guarantees
/// `P(|CF′_NS − CF_NS| ≥ ε) ≤ δ` for Null Suppression.
///
/// From `Var(CF′_NS) ≤ 1/(4r)` (Table II) and Chebyshev,
/// `P(|CF′ − CF| ≥ ε) ≤ 1/(4·r·ε²)`; solving `1/(4·r·ε²) ≤ δ` gives
/// `r ≥ 1/(4·ε²·δ)`.  This is the worst-case answer to "how big must the
/// sample be" — the progressive estimator's stopping rule replaces the
/// worst-case `1/4` with the measured jackknife variance and so usually
/// stops much earlier.
#[must_use]
pub fn ns_sample_size_for(epsilon: f64, delta: f64) -> usize {
    if epsilon <= 0.0 || delta <= 0.0 {
        return usize::MAX;
    }
    (1.0 / (4.0 * epsilon * epsilon * delta)).ceil() as usize
}

/// Expected number of distinct values observed in a with-replacement sample
/// of `r` rows drawn from a table with `d` equally frequent distinct values:
/// `E[d'] = d·(1 − (1 − 1/d)^r)`.
#[must_use]
pub fn expected_sample_distinct(distinct: u64, sample_rows: u64) -> f64 {
    if distinct == 0 || sample_rows == 0 {
        return 0.0;
    }
    let d = distinct as f64;
    let r = sample_rows as f64;
    // Use ln1p for numerical stability when d is large.
    let log_term = r * (-1.0 / d).ln_1p();
    d * (1.0 - log_term.exp())
}

/// The dictionary-compression estimate SampleCF is *expected* to return under
/// the simplified global model with uniform frequencies:
/// `E[CF'_DC] ≈ (r·p + E[d']·k) / (r·k)`.
#[must_use]
pub fn dc_expected_estimate(
    rows: u64,
    distinct: u64,
    width: u64,
    pointer_bytes: u64,
    fraction: f64,
) -> f64 {
    let r = ((rows as f64 * fraction).round() as u64).max(1);
    let d_prime = expected_sample_distinct(distinct, r);
    (r as f64 * pointer_bytes as f64 + d_prime * width as f64) / (r as f64 * width as f64)
}

/// The true dictionary-compression fraction under the simplified model.
#[must_use]
pub fn dc_true_cf(rows: u64, distinct: u64, width: u64, pointer_bytes: u64) -> f64 {
    global_dictionary_cf(TableModel::new(rows, width), distinct, pointer_bytes)
}

/// Expected ratio error of SampleCF for dictionary compression under the
/// simplified model with uniform frequencies (the quantity Theorems 2 and 3
/// bound in their respective regimes).
#[must_use]
pub fn dc_expected_ratio_error(
    rows: u64,
    distinct: u64,
    width: u64,
    pointer_bytes: u64,
    fraction: f64,
) -> f64 {
    let truth = dc_true_cf(rows, distinct, width, pointer_bytes);
    let est = dc_expected_estimate(rows, distinct, width, pointer_bytes, fraction);
    (est / truth).max(truth / est)
}

/// Worst-case ratio-error bound for the **small d** regime (Theorem 2's
/// setting, `d = o(n)`): the estimate and the truth both lie between `p/k`
/// and `p/k + d/n + d/r`, so the ratio error is at most
/// `1 + (d·k)/(r·p)` with `r = f·n`.
#[must_use]
pub fn dc_ratio_error_bound_small_d(
    rows: u64,
    distinct: u64,
    width: u64,
    pointer_bytes: u64,
    fraction: f64,
) -> f64 {
    let r = (rows as f64 * fraction).max(1.0);
    1.0 + (distinct as f64 * width as f64) / (r * pointer_bytes as f64)
}

/// Worst-case ratio-error bound for the **large d** regime (Theorem 3's
/// setting, `d = c·n`): the truth is at least `c` (the `d·k/(n·k)` term
/// alone), while the estimate never exceeds `p/k + 1`, and conversely the
/// estimate is at least `E[d']·k/(r·k) ≥ c·(1 − e^{−f/c})/f · ...`; we report
/// the dominating direction `⁠(p/k + 1) / c`, a constant independent of `n`.
#[must_use]
pub fn dc_ratio_error_bound_large_d(distinct_ratio: f64, width: u64, pointer_bytes: u64) -> f64 {
    if distinct_ratio <= 0.0 {
        return f64::INFINITY;
    }
    (pointer_bytes as f64 / width as f64 + 1.0) / distinct_ratio.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_example_from_the_paper() {
        // Example 1: n = 100 million, r = 1 million (1% sample).
        let bound = ns_stddev_bound(100_000_000, 0.01);
        assert!((bound - 5e-4).abs() < 1e-9, "bound = {bound}");
        assert!((ns_stddev_bound_for_sample(1_000_000) - 5e-4).abs() < 1e-9);
        assert!((ns_variance_bound(100_000_000, 0.01) - 2.5e-7).abs() < 1e-12);
    }

    #[test]
    fn ns_bound_shrinks_with_sample_size() {
        assert!(ns_stddev_bound(10_000, 0.01) > ns_stddev_bound(10_000, 0.1));
        assert!(ns_stddev_bound(10_000, 0.01) > ns_stddev_bound(1_000_000, 0.01));
        assert_eq!(ns_stddev_bound(0, 0.1), f64::INFINITY);
        assert_eq!(ns_stddev_bound(100, 0.0), f64::INFINITY);
    }

    #[test]
    fn chebyshev_z_matches_known_values() {
        // 95% confidence: δ = 0.05, z = 1/√0.05 ≈ 4.4721.
        assert!((chebyshev_z(0.95) - 20.0f64.sqrt()).abs() < 1e-9);
        // 75% confidence is the textbook 2σ Chebyshev bound.
        assert!((chebyshev_z(0.75) - 2.0).abs() < 1e-9);
        assert_eq!(chebyshev_z(1.0), f64::INFINITY);
        assert_eq!(chebyshev_z(0.0), 0.0);
    }

    #[test]
    fn ns_sample_size_inverts_theorem_1() {
        // ε = 0.05, δ = 0.05: r = 1/(4·0.0025·0.05) = 2000.
        assert_eq!(ns_sample_size_for(0.05, 0.05), 2000);
        // The guarantee round-trips: with r = 2000 the variance bound gives
        // a Chebyshev deviation of at most ε at confidence 1 − δ.
        let sigma = ns_stddev_bound_for_sample(2000);
        assert!(chebyshev_z(0.95) * sigma <= 0.05 + 1e-12);
        // Tighter targets need more rows; degenerate targets need them all.
        assert!(ns_sample_size_for(0.01, 0.05) > ns_sample_size_for(0.05, 0.05));
        assert_eq!(ns_sample_size_for(0.0, 0.05), usize::MAX);
        assert_eq!(ns_sample_size_for(0.1, 0.0), usize::MAX);
    }

    #[test]
    fn expected_sample_distinct_limits() {
        // Sampling far more rows than distinct values sees almost all of them.
        let e = expected_sample_distinct(100, 10_000);
        assert!(e > 99.9);
        // Sampling one row sees exactly one value in expectation.
        assert!((expected_sample_distinct(1000, 1) - 1.0).abs() < 1e-9);
        // More distinct values than draws: expectation close to the draw count.
        let e = expected_sample_distinct(1_000_000, 100);
        assert!(e > 99.9 && e <= 100.0);
        assert_eq!(expected_sample_distinct(0, 10), 0.0);
    }

    #[test]
    fn dc_small_d_regime_has_ratio_error_near_one() {
        // Theorem 2: d = o(n) and n large enough that the sample size r = f·n
        // dwarfs d.  n = 100M, d = 10^4 = √n, k = 20, p = 2, f = 1%.
        let err = dc_expected_ratio_error(100_000_000, 10_000, 20, 2, 0.01);
        assert!(err < 1.15, "expected ratio error close to 1, got {err}");
        let bound = dc_ratio_error_bound_small_d(100_000_000, 10_000, 20, 2, 0.01);
        assert!(
            bound + 1e-9 >= err,
            "bound {bound} below expected error {err}"
        );
        assert!(bound < 1.2);
        // The error shrinks further as n grows, as Theorem 2 requires.
        let err_bigger_n = dc_expected_ratio_error(1_000_000_000, 10_000, 20, 2, 0.01);
        assert!(err_bigger_n < err);
    }

    #[test]
    fn dc_large_d_regime_has_constant_bounded_error() {
        // Theorem 3: d = c·n with c = 0.25.
        for n in [100_000u64, 1_000_000, 10_000_000] {
            let d = n / 4;
            let err = dc_expected_ratio_error(n, d, 20, 2, 0.01);
            let bound = dc_ratio_error_bound_large_d(0.25, 20, 2);
            assert!(err <= bound, "n={n}: err {err} exceeds bound {bound}");
            assert!(err < 4.0, "n={n}: err {err} should be a small constant");
        }
        // The bound itself does not depend on n.
        assert!((dc_ratio_error_bound_large_d(0.25, 20, 2) - (0.1 + 1.0) / 0.25).abs() < 1e-12);
    }

    #[test]
    fn dc_worst_errors_live_between_the_regimes() {
        // For fixed f, the expected ratio error peaks at intermediate d/n.
        let n = 1_000_000u64;
        let small = dc_expected_ratio_error(n, 100, 20, 2, 0.01);
        let mid = dc_expected_ratio_error(n, 50_000, 20, 2, 0.01);
        let large = dc_expected_ratio_error(n, 500_000, 20, 2, 0.01);
        assert!(mid > small, "mid {mid} should exceed small {small}");
        assert!(mid > large, "mid {mid} should exceed large {large}");
    }

    #[test]
    fn dc_estimate_overestimates_cf_never_underestimates_truth_scaling() {
        // Under the simplified model the estimate's d'/r >= d/n in expectation
        // is false in general; but the estimate is always >= p/k and <= p/k + 1.
        let est = dc_expected_estimate(1_000_000, 200_000, 20, 2, 0.05);
        assert!((2.0 / 20.0..=2.0 / 20.0 + 1.0).contains(&est));
    }
}
