//! Reservoir sampling (Vitter's Algorithm R).
//!
//! Draws a fixed-size uniform sample without replacement in a single pass
//! over the table, without knowing the number of rows in advance — the
//! classical technique referenced by the paper (\[5\] J.S. Vitter, "Random
//! Sampling with a Reservoir").

use crate::error::{SamplingError, SamplingResult};
use crate::sampler::{RowSampler, SampledRow};
use rand::Rng;
use rand::RngCore;
use samplecf_storage::{PageId, TableSource};

/// Fixed-size single-pass reservoir sampler.
#[derive(Debug, Clone, Copy)]
pub struct ReservoirSampler {
    size: usize,
}

impl ReservoirSampler {
    /// Create a reservoir sampler that keeps exactly `size` rows (or every
    /// row, if the table is smaller).
    pub fn new(size: usize) -> SamplingResult<Self> {
        if size == 0 {
            return Err(SamplingError::InvalidSize(
                "reservoir size must be at least 1".to_string(),
            ));
        }
        Ok(ReservoirSampler { size })
    }

    /// The reservoir capacity.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }
}

impl RowSampler for ReservoirSampler {
    fn name(&self) -> &'static str {
        "reservoir"
    }

    fn sample(
        &self,
        source: &dyn TableSource,
        rng: &mut dyn RngCore,
    ) -> SamplingResult<Vec<SampledRow>> {
        // Stream page by page: memory stays O(reservoir + one page), which
        // is the whole point of reservoir sampling on large (disk-resident)
        // tables.
        let mut reservoir: Vec<SampledRow> = Vec::with_capacity(self.size);
        let mut seen = 0usize;
        for pid in 0..source.num_pages() {
            for (rid, row) in source.page_rows(pid as PageId)? {
                if reservoir.len() < self.size {
                    reservoir.push((rid, row));
                } else {
                    let j = rng.gen_range(0..=seen);
                    if j < self.size {
                        reservoir[j] = (rid, row);
                    }
                }
                seen += 1;
            }
        }
        Ok(reservoir)
    }

    fn expected_sample_size(&self, n: usize) -> usize {
        self.size.min(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use samplecf_storage::{Row, Schema, Table, TableBuilder, Value};
    use std::collections::HashSet;

    fn table(n: usize) -> Table {
        TableBuilder::new("t", Schema::single_char("a", 12))
            .build_with_rows((0..n).map(|i| Row::new(vec![Value::str(format!("v{i:05}"))])))
            .unwrap()
    }

    #[test]
    fn keeps_exactly_the_requested_size() {
        let t = table(1000);
        let s = ReservoirSampler::new(37).unwrap();
        let sample = s.sample(&t, &mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(sample.len(), 37);
        let distinct: HashSet<_> = sample.iter().map(|(rid, _)| *rid).collect();
        assert_eq!(
            distinct.len(),
            37,
            "reservoir sampling is without replacement"
        );
    }

    #[test]
    fn small_tables_are_returned_whole() {
        let t = table(5);
        let s = ReservoirSampler::new(50).unwrap();
        let sample = s.sample(&t, &mut StdRng::seed_from_u64(2)).unwrap();
        assert_eq!(sample.len(), 5);
        assert_eq!(s.expected_sample_size(5), 5);
    }

    #[test]
    fn zero_size_is_rejected() {
        assert!(ReservoirSampler::new(0).is_err());
    }

    #[test]
    fn empty_table_yields_empty_reservoir() {
        // Unified edge behaviour with the fraction-based samplers.
        let t = table(0);
        let s = ReservoirSampler::new(10).unwrap();
        assert!(s
            .sample(&t, &mut StdRng::seed_from_u64(9))
            .unwrap()
            .is_empty());
        assert_eq!(s.expected_sample_size(0), 0);
    }

    #[test]
    fn inclusion_is_roughly_uniform_across_positions() {
        // Early rows must not be favoured over late rows.
        let t = table(200);
        let s = ReservoirSampler::new(20).unwrap();
        let mut first_half = 0usize;
        let mut second_half = 0usize;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..300 {
            for (_, row) in s.sample(&t, &mut rng).unwrap() {
                let id: usize = row.value(0).as_str().unwrap()[1..].parse().unwrap();
                if id < 100 {
                    first_half += 1;
                } else {
                    second_half += 1;
                }
            }
        }
        let ratio = first_half as f64 / second_half as f64;
        assert!(ratio > 0.8 && ratio < 1.25, "ratio = {ratio}");
    }
}
