//! Analytic compression-fraction models from Section III of the paper.
//!
//! These closed-form expressions are what the theorems reason about; the
//! benchmark harness compares them against the sizes produced by the actual
//! codecs in this crate to confirm the codecs track the model.

/// Parameters of the paper's single-column `char(k)` table model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableModel {
    /// Number of rows `n`.
    pub rows: u64,
    /// Declared column width `k` in bytes.
    pub width: u64,
}

impl TableModel {
    /// Create a model for `n` rows of `char(k)`.
    #[must_use]
    pub fn new(rows: u64, width: u64) -> Self {
        TableModel { rows, width }
    }

    /// Uncompressed size `n·k` in bytes.
    #[must_use]
    pub fn uncompressed_bytes(&self) -> u64 {
        self.rows * self.width
    }
}

/// Compression fraction of Null Suppression (Section III-A):
///
/// `CF_NS = (Σ ℓᵢ + n·m) / (n·k)`
///
/// where `m` is the per-cell length-marker cost in bytes.
#[must_use]
pub fn null_suppression_cf(model: TableModel, sum_lengths: u64, marker_bytes: u64) -> f64 {
    if model.rows == 0 || model.width == 0 {
        return 1.0;
    }
    (sum_lengths + model.rows * marker_bytes) as f64 / model.uncompressed_bytes() as f64
}

/// The SampleCF estimate of `CF_NS` computed from a sample of `r` rows whose
/// null-suppressed lengths sum to `sample_sum_lengths`.  Because CF is a
/// ratio, the `n/r` scale-up cancels and the estimate is simply the sample's
/// own compression fraction.
#[must_use]
pub fn null_suppression_cf_estimate(
    sample_rows: u64,
    width: u64,
    sample_sum_lengths: u64,
    marker_bytes: u64,
) -> f64 {
    null_suppression_cf(
        TableModel::new(sample_rows, width),
        sample_sum_lengths,
        marker_bytes,
    )
}

/// Compression fraction of the simplified (global-dictionary) model of
/// dictionary compression (Section III-B):
///
/// `CF_DC = (n·p + d·k) / (n·k)`
///
/// where `p` is the pointer width in bytes and `d` the number of distinct
/// values.
#[must_use]
pub fn global_dictionary_cf(model: TableModel, distinct: u64, pointer_bytes: u64) -> f64 {
    if model.rows == 0 || model.width == 0 {
        return 1.0;
    }
    (model.rows * pointer_bytes + distinct * model.width) as f64 / model.uncompressed_bytes() as f64
}

/// The SampleCF estimate of `CF_DC` under the simplified model, computed from
/// a sample of `r` rows containing `d'` distinct values:
///
/// `CF'_DC = (r·p + d'·k) / (r·k)`
#[must_use]
pub fn global_dictionary_cf_estimate(
    sample_rows: u64,
    width: u64,
    sample_distinct: u64,
    pointer_bytes: u64,
) -> f64 {
    global_dictionary_cf(
        TableModel::new(sample_rows, width),
        sample_distinct,
        pointer_bytes,
    )
}

/// Compression fraction of *paged* dictionary compression (the paper's full
/// expression): each distinct value `i` is stored once in each of the
/// `Pg(i)` pages it occurs in, and every row stores a `p`-byte pointer:
///
/// `CF = (n·p + Σᵢ Pg(i)·k) / (n·k)`
#[must_use]
pub fn paged_dictionary_cf(model: TableModel, pages_per_value: &[u64], pointer_bytes: u64) -> f64 {
    if model.rows == 0 || model.width == 0 {
        return 1.0;
    }
    let dict_bytes: u64 = pages_per_value.iter().map(|pg| pg * model.width).sum();
    (model.rows * pointer_bytes + dict_bytes) as f64 / model.uncompressed_bytes() as f64
}

/// Minimal pointer width in bytes able to address `distinct` dictionary
/// entries (the paper's `p = ⌈log₂ d⌉` bits rounded up to whole bytes).
#[must_use]
pub fn minimal_pointer_bytes(distinct: u64) -> u64 {
    let max_index = distinct.saturating_sub(1);
    let mut bytes = 1u64;
    while bytes < 8 && max_index > (1u64 << (8 * bytes)) - 1 {
        bytes += 1;
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_cf_matches_hand_computation() {
        // 10 rows of char(20), each value 3 characters, 1-byte marker:
        // (30 + 10) / 200 = 0.2
        let cf = null_suppression_cf(TableModel::new(10, 20), 30, 1);
        assert!((cf - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ns_cf_degenerate_cases() {
        assert_eq!(null_suppression_cf(TableModel::new(0, 20), 0, 1), 1.0);
        assert_eq!(null_suppression_cf(TableModel::new(10, 0), 0, 1), 1.0);
    }

    #[test]
    fn ns_estimate_equals_sample_cf() {
        // The estimate is scale free: the same average length gives the same CF.
        let full = null_suppression_cf(TableModel::new(1_000_000, 40), 10 * 1_000_000, 1);
        let est = null_suppression_cf_estimate(1_000, 40, 10 * 1_000, 1);
        assert!((full - est).abs() < 1e-12);
    }

    #[test]
    fn dc_cf_matches_hand_computation() {
        // n=100, d=10, k=20, p=2: (200 + 200)/2000 = 0.2
        let cf = global_dictionary_cf(TableModel::new(100, 20), 10, 2);
        assert!((cf - 0.2).abs() < 1e-12);
    }

    #[test]
    fn dc_cf_grows_with_distinct_values() {
        let m = TableModel::new(1000, 20);
        let low = global_dictionary_cf(m, 10, 2);
        let high = global_dictionary_cf(m, 900, 2);
        assert!(low < high);
        assert!(high > 0.9);
    }

    #[test]
    fn paged_dc_upper_bounds_global_dc() {
        let m = TableModel::new(1000, 20);
        // 50 distinct values, each appearing on 4 pages.
        let pages: Vec<u64> = vec![4; 50];
        let paged = paged_dictionary_cf(m, &pages, 2);
        let global = global_dictionary_cf(m, 50, 2);
        assert!(paged > global);
    }

    #[test]
    fn minimal_pointer_bytes_matches_log() {
        assert_eq!(minimal_pointer_bytes(0), 1);
        assert_eq!(minimal_pointer_bytes(1), 1);
        assert_eq!(minimal_pointer_bytes(256), 1);
        assert_eq!(minimal_pointer_bytes(257), 2);
        assert_eq!(minimal_pointer_bytes(65_536), 2);
        assert_eq!(minimal_pointer_bytes(65_537), 3);
    }
}
