//! Compressing an index and reporting its compression fraction.
//!
//! This is the "Compress index I′ using C" step of the SampleCF algorithm
//! (paper Figure 2).  Columns are compressed independently, per leaf page,
//! which matches how the paper describes commercial implementations.

use crate::btree::BTreeIndex;
use crate::error::IndexResult;
use crate::spec::IndexKind;
use samplecf_compression::{CellChunk, ColumnChunk, CompressionOutcome, CompressionScheme};
use samplecf_storage::{CellRef, Rid, PAGE_HEADER_SIZE, SLOT_SIZE};

/// Per-column compression statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnCompressionStat {
    /// Column name.
    pub column: String,
    /// Uncompressed bytes of this column across all leaf entries.
    pub uncompressed_bytes: usize,
    /// Compressed bytes of this column (including any shared dictionary).
    pub compressed_bytes: usize,
}

impl ColumnCompressionStat {
    /// Compression fraction of this column alone.
    #[must_use]
    pub fn cf(&self) -> f64 {
        if self.uncompressed_bytes == 0 {
            1.0
        } else {
            self.compressed_bytes as f64 / self.uncompressed_bytes as f64
        }
    }
}

/// The result of compressing an index.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedIndexReport {
    /// Name of the compression scheme used.
    pub scheme: String,
    /// Number of leaf entries.
    pub num_entries: usize,
    /// Number of (uncompressed) leaf pages.
    pub leaf_pages: usize,
    /// Page size in bytes.
    pub page_size: usize,
    /// Per-column statistics, in stored-column order.
    pub per_column: Vec<ColumnCompressionStat>,
    /// RID pointer bytes in leaf entries (stored uncompressed).
    pub rid_bytes: usize,
    /// Null bitmap bytes in leaf entries (stored uncompressed).
    pub bitmap_bytes: usize,
    /// Internal (non-leaf) level bytes, which compression leaves untouched.
    pub internal_bytes: usize,
}

impl CompressedIndexReport {
    /// Uncompressed bytes of the stored column data (the paper's `n·k`).
    #[must_use]
    pub fn uncompressed_data_bytes(&self) -> usize {
        self.per_column.iter().map(|c| c.uncompressed_bytes).sum()
    }

    /// Compressed bytes of the stored column data.
    #[must_use]
    pub fn compressed_data_bytes(&self) -> usize {
        self.per_column.iter().map(|c| c.compressed_bytes).sum()
    }

    /// The compression fraction over column data, `CF = compressed /
    /// uncompressed` — the quantity the paper's analysis is about.
    #[must_use]
    pub fn cf(&self) -> f64 {
        self.outcome().compression_fraction()
    }

    /// Compression fraction including the bytes that compression does not
    /// touch (RID pointers and null bitmaps) in both numerator and
    /// denominator.  This is closer to what an engine would report for the
    /// whole leaf level.
    #[must_use]
    pub fn cf_with_pointers(&self) -> f64 {
        let overhead = self.rid_bytes + self.bitmap_bytes;
        let unc = self.uncompressed_data_bytes() + overhead;
        if unc == 0 {
            return 1.0;
        }
        (self.compressed_data_bytes() + overhead) as f64 / unc as f64
    }

    /// Estimated number of leaf pages after compression, assuming entries are
    /// repacked densely into pages of the same size.
    #[must_use]
    pub fn estimated_compressed_leaf_pages(&self) -> usize {
        if self.num_entries == 0 {
            return self.leaf_pages.min(1);
        }
        let usable = self.page_size - PAGE_HEADER_SIZE;
        let payload = self.compressed_data_bytes()
            + self.rid_bytes
            + self.bitmap_bytes
            + self.num_entries * SLOT_SIZE;
        payload.div_ceil(usable).max(1)
    }

    /// Page-level compression fraction: compressed leaf pages over
    /// uncompressed leaf pages.
    #[must_use]
    pub fn cf_pages(&self) -> f64 {
        if self.leaf_pages == 0 {
            return 1.0;
        }
        self.estimated_compressed_leaf_pages() as f64 / self.leaf_pages as f64
    }

    /// The data-only sizes as a [`CompressionOutcome`].
    #[must_use]
    pub fn outcome(&self) -> CompressionOutcome {
        CompressionOutcome::new(self.uncompressed_data_bytes(), self.compressed_data_bytes())
    }
}

/// Compress every stored column of the index's leaf level with `scheme` and
/// report the resulting sizes.
pub fn compress_index(
    index: &BTreeIndex,
    scheme: &dyn CompressionScheme,
) -> IndexResult<CompressedIndexReport> {
    let schema = index.table_schema();
    let stored = index.stored_column_indexes();

    // Decode each leaf page once, then slice per column.
    let mut per_page_entries = Vec::with_capacity(index.num_leaf_pages());
    for page in index.leaf_pages() {
        per_page_entries.push(index.leaf_entries(page)?);
    }

    let mut per_column = Vec::with_capacity(stored.len());
    for (pos, &col_idx) in stored.iter().enumerate() {
        let column = schema.column_at(col_idx);
        let chunks: Vec<ColumnChunk> = per_page_entries
            .iter()
            .map(|entries| {
                ColumnChunk::new(
                    column.datatype,
                    entries
                        .iter()
                        .map(|e| e.stored.value(pos).clone())
                        .collect(),
                )
            })
            .collect::<Result<_, _>>()?;
        let uncompressed_bytes: usize = chunks.iter().map(ColumnChunk::uncompressed_bytes).sum();
        let compressed_bytes = scheme.compress_column(&chunks)?.compressed_bytes();
        per_column.push(ColumnCompressionStat {
            column: column.name.clone(),
            uncompressed_bytes,
            compressed_bytes,
        });
    }

    let n = index.num_entries();
    let rid_bytes = if index.spec().kind() == IndexKind::NonClustered {
        n * Rid::ENCODED_LEN
    } else {
        0
    };
    let bitmap_bytes = n * stored.len().div_ceil(8);

    Ok(CompressedIndexReport {
        scheme: scheme.name().to_string(),
        num_entries: n,
        leaf_pages: index.num_leaf_pages(),
        page_size: index.page_size(),
        per_column,
        rid_bytes,
        bitmap_bytes,
        internal_bytes: index.num_internal_pages() * index.page_size(),
    })
}

/// Measure every stored column of the index's leaf level with `scheme` —
/// the zero-copy counterpart of [`compress_index`].
///
/// Instead of decoding leaf entries into owned
/// [`Row`](samplecf_storage::Row)s and running the byte-producing codec,
/// this borrows each stored cell in place (leaf records keep cells at fixed,
/// schema-determined offsets) and asks the scheme for its exact output size
/// via the batch measure kernels.  The returned report is identical, field
/// for field, to what [`compress_index`] produces on the same index — the
/// differential test suite pins this down for every scheme.
pub fn measure_index(
    index: &BTreeIndex,
    scheme: &dyn CompressionScheme,
) -> IndexResult<CompressedIndexReport> {
    let schema = index.table_schema();
    let stored = index.stored_column_indexes();
    let bitmap_len = stored.len().div_ceil(8);

    // Fixed offset and width of each stored cell within a leaf record.
    let widths: Vec<usize> = stored
        .iter()
        .map(|&i| schema.column_at(i).datatype.uncompressed_width())
        .collect();
    let mut offsets = Vec::with_capacity(stored.len());
    let mut off = bitmap_len;
    for w in &widths {
        offsets.push(off);
        off += w;
    }

    let mut per_column = Vec::with_capacity(stored.len());
    for (pos, &col_idx) in stored.iter().enumerate() {
        let column = schema.column_at(col_idx);
        let mut chunks = Vec::with_capacity(index.num_leaf_pages());
        for page in index.leaf_pages() {
            let mut cells = Vec::with_capacity(usize::from(page.slot_count()));
            for record in page.records() {
                let is_null = record[pos / 8] & (1 << (pos % 8)) != 0;
                cells.push(CellRef::new(
                    is_null,
                    &record[offsets[pos]..offsets[pos] + widths[pos]],
                ));
            }
            chunks.push(CellChunk::new(column.datatype, cells)?);
        }
        let uncompressed_bytes: usize = chunks.iter().map(CellChunk::uncompressed_bytes).sum();
        let compressed_bytes = scheme.measure_chunks(&chunks)?;
        per_column.push(ColumnCompressionStat {
            column: column.name.clone(),
            uncompressed_bytes,
            compressed_bytes,
        });
    }

    let n = index.num_entries();
    let rid_bytes = if index.spec().kind() == IndexKind::NonClustered {
        n * Rid::ENCODED_LEN
    } else {
        0
    };
    let bitmap_bytes = n * bitmap_len;

    Ok(CompressedIndexReport {
        scheme: scheme.name().to_string(),
        num_entries: n,
        leaf_pages: index.num_leaf_pages(),
        page_size: index.page_size(),
        per_column,
        rid_bytes,
        bitmap_bytes,
        internal_bytes: index.num_internal_pages() * index.page_size(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::btree::IndexBuilder;
    use crate::spec::IndexSpec;
    use samplecf_compression::{
        DictionaryCompression, GlobalDictionaryCompression, NullSuppression, Uncompressed,
    };
    use samplecf_storage::{Column, DataType, Row, Schema, Table, TableBuilder, Value};

    fn table(n: usize, distinct: usize, value_len: usize, k: u16) -> Table {
        let schema = Schema::new(vec![
            Column::new("a", DataType::Char(k)),
            Column::new("id", DataType::Int64),
        ])
        .unwrap();
        TableBuilder::new("t", schema)
            .build_with_rows((0..n).map(|i| {
                Row::new(vec![
                    Value::str(format!("{:0width$}", i % distinct, width = value_len)),
                    Value::int(i as i64),
                ])
            }))
            .unwrap()
    }

    fn build(t: &Table) -> BTreeIndex {
        let spec = IndexSpec::nonclustered("i", ["a"]).unwrap();
        IndexBuilder::new()
            .page_size(2048)
            .build_from_table(t, &spec)
            .unwrap()
    }

    #[test]
    fn uncompressed_scheme_gives_cf_near_one() {
        let t = table(2000, 50, 8, 30);
        let idx = build(&t);
        let report = compress_index(&idx, &Uncompressed).unwrap();
        assert_eq!(report.uncompressed_data_bytes(), 2000 * 30);
        let cf = report.cf();
        assert!(cf > 0.99 && cf < 1.05, "cf = {cf}");
    }

    #[test]
    fn null_suppression_cf_matches_expected_ratio() {
        // Values are 8 characters wide stored in char(32): CF ≈ (8 + 1)/32.
        let t = table(3000, 3000, 8, 32);
        let idx = build(&t);
        let report = compress_index(&idx, &NullSuppression).unwrap();
        let cf = report.cf();
        let expected = 9.0 / 32.0;
        assert!(
            (cf - expected).abs() < 0.02,
            "cf = {cf}, expected ≈ {expected}"
        );
    }

    #[test]
    fn dictionary_compression_benefits_from_few_distinct_values() {
        let few = {
            let t = table(4000, 10, 10, 20);
            compress_index(&build(&t), &DictionaryCompression::default()).unwrap()
        };
        let many = {
            let t = table(4000, 4000, 10, 20);
            compress_index(&build(&t), &DictionaryCompression::default()).unwrap()
        };
        assert!(few.cf() < many.cf());
        assert!(few.cf() < 0.3, "cf = {}", few.cf());
        assert!(many.cf() > 0.5, "cf = {}", many.cf());
    }

    #[test]
    fn global_dictionary_is_never_worse_than_paged() {
        let t = table(5000, 40, 12, 24);
        let idx = build(&t);
        let paged = compress_index(&idx, &DictionaryCompression::default()).unwrap();
        let global = compress_index(&idx, &GlobalDictionaryCompression::default()).unwrap();
        assert!(global.compressed_data_bytes() <= paged.compressed_data_bytes());
    }

    #[test]
    fn per_column_stats_cover_all_stored_columns() {
        let t = table(500, 20, 6, 16);
        let spec = IndexSpec::clustered("i", ["a"]).unwrap();
        let idx = IndexBuilder::new()
            .page_size(2048)
            .build_from_table(&t, &spec)
            .unwrap();
        let report = compress_index(&idx, &NullSuppression).unwrap();
        assert_eq!(report.per_column.len(), 2);
        assert_eq!(report.per_column[0].column, "a");
        assert_eq!(report.per_column[1].column, "id");
        assert_eq!(report.rid_bytes, 0);
        for c in &report.per_column {
            assert!(c.cf() > 0.0);
        }
    }

    #[test]
    fn page_estimates_shrink_for_compressible_data() {
        let t = table(5000, 5, 4, 40);
        let idx = build(&t);
        let report = compress_index(&idx, &DictionaryCompression::default()).unwrap();
        assert!(report.estimated_compressed_leaf_pages() < report.leaf_pages);
        assert!(report.cf_pages() < 1.0);
        assert!(report.cf_with_pointers() < 1.0);
        assert!(report.cf_with_pointers() > report.cf());
    }

    #[test]
    fn empty_index_reports_neutral_cf() {
        let schema = Schema::single_char("a", 8);
        let spec = IndexSpec::nonclustered("i", ["a"]).unwrap();
        let idx = IndexBuilder::new()
            .build_from_rows(&schema, &[], &spec)
            .unwrap();
        let report = compress_index(&idx, &NullSuppression).unwrap();
        assert_eq!(report.cf(), 1.0);
        assert_eq!(report.cf_pages(), 1.0);
        assert_eq!(report.estimated_compressed_leaf_pages(), 1);
    }

    fn all_schemes() -> Vec<Box<dyn CompressionScheme>> {
        vec![
            Box::new(Uncompressed),
            Box::new(NullSuppression),
            Box::new(samplecf_compression::RunLengthEncoding),
            Box::new(samplecf_compression::PrefixCompression),
            Box::new(DictionaryCompression::default()),
            Box::new(GlobalDictionaryCompression::default()),
        ]
    }

    #[test]
    fn measure_index_matches_compress_index_for_every_scheme() {
        let t = table(3000, 40, 8, 24);
        for spec in [
            IndexSpec::nonclustered("i", ["a"]).unwrap(),
            IndexSpec::clustered("i", ["a"]).unwrap(),
        ] {
            let idx = IndexBuilder::new()
                .page_size(2048)
                .build_from_table(&t, &spec)
                .unwrap();
            for scheme in all_schemes() {
                let compressed = compress_index(&idx, scheme.as_ref()).unwrap();
                let measured = measure_index(&idx, scheme.as_ref()).unwrap();
                assert_eq!(
                    measured,
                    compressed,
                    "scheme {} report mismatch",
                    scheme.name()
                );
            }
        }
    }

    #[test]
    fn measure_index_matches_compress_index_with_nulls() {
        let schema = Schema::new(vec![
            Column::nullable("a", DataType::Char(10)),
            Column::new("b", DataType::Int32),
        ])
        .unwrap();
        let rows: Vec<(samplecf_storage::Rid, Row)> = (0..800)
            .map(|i| {
                let v = if i % 3 == 0 {
                    Value::Null
                } else {
                    Value::str(format!("v{}", i % 25))
                };
                (
                    samplecf_storage::Rid::new(i / 100, (i % 100) as u16),
                    Row::new(vec![v, Value::int(i64::from(i))]),
                )
            })
            .collect();
        let spec = IndexSpec::nonclustered("i", ["a"]).unwrap();
        let idx = IndexBuilder::new()
            .page_size(1024)
            .build_from_rows(&schema, &rows, &spec)
            .unwrap();
        for scheme in all_schemes() {
            assert_eq!(
                measure_index(&idx, scheme.as_ref()).unwrap(),
                compress_index(&idx, scheme.as_ref()).unwrap(),
                "scheme {} report mismatch on NULL-heavy index",
                scheme.name()
            );
        }
    }

    #[test]
    fn measure_index_handles_the_empty_tree() {
        let schema = Schema::single_char("a", 8);
        let spec = IndexSpec::nonclustered("i", ["a"]).unwrap();
        let idx = IndexBuilder::new()
            .build_from_rows(&schema, &[], &spec)
            .unwrap();
        for scheme in all_schemes() {
            assert_eq!(
                measure_index(&idx, scheme.as_ref()).unwrap(),
                compress_index(&idx, scheme.as_ref()).unwrap()
            );
        }
    }
}
