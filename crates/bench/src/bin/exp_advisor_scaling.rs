//! Regenerates the `advisor_scaling` experiment (shared-sample advisor vs
//! naive per-candidate sampling over a disk-resident table).  Pass `--quick`
//! (or set `SAMPLECF_QUICK=1`) for a fast, reduced-size run.

fn main() {
    let quick = samplecf_bench::experiments::quick_mode();
    let report = samplecf_bench::experiments::advisor_scaling::run(quick);
    let path = report.finish().expect("writing the report succeeds");
    eprintln!("wrote {}", path.display());
}
