//! **Progressive stopping experiment** — the tentpole claim of the
//! stream-then-stop pipeline: on low-variance tables the adaptive estimator
//! reaches a 10% target ratio-error reading *strictly fewer* pages than a
//! fixed `f = 0.1` run, while on adversarial tables it runs to the cap and
//! returns exactly the fixed-`f` answer (prefix-stable streams make that
//! equality literal, not approximate).  Tables are materialised to disk and
//! every page access counted, so the I/O numbers are physical reads.

use crate::report::{fmt, Report, Table};
use samplecf_compression::scheme_by_name;
use samplecf_core::{ratio_error, ExactCf, ProgressiveCf, ProgressiveConfig, SampleCf};
use samplecf_datagen::{presets, RowLayout};
use samplecf_index::IndexSpec;
use samplecf_sampling::{BatchSchedule, CountingSource, SamplerKind};
use samplecf_storage::DiskTable;

const CAP_FRACTION: f64 = 0.1;
const TARGET_ERROR: f64 = 0.1;

/// Run the experiment.
pub fn run(quick: bool) -> Report {
    let rows = if quick { 30_000 } else { 120_000 };
    let spec = IndexSpec::nonclustered("idx_a", ["a"]).expect("valid spec");

    // (label, table spec, scheme): from zero variance to adversarial.
    let scenarios = [
        (
            "all-equal (zero variance)",
            presets::constant_table("const", rows, 24, 8, 41),
            "null-suppression",
        ),
        (
            "variable-length (moderate)",
            presets::variable_length_table("varlen", rows, 40, rows / 100, 4, 36, 42),
            "null-suppression",
        ),
        (
            // Variable-length values physically sorted by value: every page
            // holds a single value, so block batches see wildly different
            // null-suppressed lengths and the CI never tightens.
            "clustered layout (adversarial for block sampling)",
            presets::variable_length_table("clustered", rows, 40, 50, 4, 36, 43)
                .layout(RowLayout::ClusteredBy(0)),
            "null-suppression",
        ),
    ];

    let mut report = Report::new("exp_progressive_stopping");
    let mut t = Table::new(
        format!(
            "Adaptive (target {TARGET_ERROR:.0e}-relative CI half-width, 95% confidence) vs \
             fixed f = {CAP_FRACTION} block sampling (n = {rows}, on-disk, physical page reads)"
        ),
        &[
            "table",
            "stopped at f",
            "pages adaptive",
            "pages fixed",
            "CF adaptive",
            "CF fixed",
            "CF exact",
            "ratio err adaptive",
            "target met",
        ],
    );

    for (label, table_spec, scheme_name) in scenarios {
        let scheme = scheme_by_name(scheme_name).expect("known scheme");
        let generated = table_spec.generate().expect("generation succeeds");
        let path = std::env::temp_dir().join(format!(
            "samplecf_exp_progressive_{}_{}.scf",
            generated.table.name(),
            std::process::id()
        ));
        let disk =
            DiskTable::materialize(&path, &generated.table).expect("materialisation succeeds");

        let exact = ExactCf::new()
            .compute(&disk, &spec, scheme.as_ref())
            .expect("exact computation succeeds");

        // Fixed-fraction baseline: one-shot block sample at the cap.
        let fixed_counting = CountingSource::new(&disk);
        let fixed = SampleCf::new(SamplerKind::Block(CAP_FRACTION))
            .seed(7)
            .estimate(&fixed_counting, &spec, scheme.as_ref())
            .expect("fixed estimate succeeds");
        let fixed_pages = fixed_counting.pages_read();

        // Adaptive run: same sampler cap and seed, variance-driven stop.
        let adaptive = ProgressiveCf::new(
            SamplerKind::Block(CAP_FRACTION),
            ProgressiveConfig {
                target_error: TARGET_ERROR,
                confidence: 0.95,
                schedule: BatchSchedule::default(),
            },
        )
        .seed(7)
        .run(&disk, &spec, scheme.as_ref())
        .expect("progressive run succeeds");

        let err_adaptive = ratio_error(adaptive.measurement.cf, exact.cf);
        let stopped_fraction = adaptive.final_checkpoint().map_or(0.0, |c| c.fraction);
        t.row(&[
            label.to_string(),
            fmt(stopped_fraction),
            adaptive.pages_read.to_string(),
            fixed_pages.to_string(),
            fmt(adaptive.measurement.cf),
            fmt(fixed.cf),
            fmt(exact.cf),
            fmt(err_adaptive),
            adaptive.target_met.to_string(),
        ]);

        // The acceptance claims, enforced so CI fails loudly if the
        // stopping rule regresses.
        if label.starts_with("all-equal") {
            assert!(
                adaptive.pages_read < fixed_pages,
                "low-variance table must stop early: adaptive read {} pages, fixed read {}",
                adaptive.pages_read,
                fixed_pages
            );
            assert!(
                err_adaptive < 1.0 + TARGET_ERROR,
                "adaptive estimate must be within the 10% target, got ratio error {err_adaptive}"
            );
            assert!(adaptive.target_met);
        }
        if label.starts_with("clustered") {
            // Adversarial case: the CI never tightens, the run exhausts the
            // cap, and so it *is* the fixed-f estimate — identical CF,
            // identical accuracy, honest "target not met" flag.
            assert!(
                !adaptive.target_met,
                "the clustered table must defeat the stopping rule"
            );
            assert_eq!(
                adaptive.measurement.cf, fixed.cf,
                "a capped run must equal the fixed-f estimate byte-for-byte"
            );
            assert_eq!(adaptive.pages_read, fixed_pages);
        }

        drop(disk);
        let _ = std::fs::remove_file(&path);
    }

    t.note(
        "Measured shape: on the all-equal table the jackknife sees zero variance after two \
         batches and stops at ~2% of the pages the fixed f = 0.1 run reads, with the same \
         answer.  The moderate table stops part-way once its CI tightens below the target.  \
         On the clustered table block samples disagree wildly (each page is a single value), \
         the CI never tightens, and the run spends its whole budget — returning exactly the \
         fixed-f estimate, because a fully-consumed prefix-stable stream IS the one-shot \
         draw.  Sequential estimation therefore dominates the fixed-fraction pipeline: it \
         never does worse, and on easy tables it reads an order of magnitude less.",
    );
    report.add(t);
    report
}
