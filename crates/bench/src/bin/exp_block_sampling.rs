//! Regenerates the `block_sampling` experiment (see DESIGN.md §5 and EXPERIMENTS.md).
//! Pass `--quick` (or set `SAMPLECF_QUICK=1`) for a fast, reduced-size run.

fn main() {
    let quick = samplecf_bench::experiments::quick_mode();
    let report = samplecf_bench::experiments::block_sampling::run(quick);
    let path = report.finish().expect("writing the report succeeds");
    eprintln!("wrote {}", path.display());
}
