//! Record identifiers.

use std::fmt;

/// Identifier of a page within a heap file or index file.
pub type PageId = u32;

/// A record identifier: page number plus slot number within that page.
///
/// Non-clustered indexes store `Rid`s as their "row pointers"; the width of
/// an encoded `Rid` ([`Rid::ENCODED_LEN`]) therefore contributes to index
/// leaf entry sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Page number within the file.
    pub page: PageId,
    /// Slot number within the page.
    pub slot: u16,
}

impl Rid {
    /// Number of bytes an encoded `Rid` occupies.
    pub const ENCODED_LEN: usize = 6;

    /// Create a new record identifier.
    #[must_use]
    pub fn new(page: PageId, slot: u16) -> Self {
        Rid { page, slot }
    }

    /// Encode into a fixed 6-byte representation.
    #[must_use]
    pub fn encode(&self) -> [u8; Self::ENCODED_LEN] {
        let mut out = [0u8; Self::ENCODED_LEN];
        out[..4].copy_from_slice(&self.page.to_be_bytes());
        out[4..].copy_from_slice(&self.slot.to_be_bytes());
        out
    }

    /// Decode from the 6-byte representation produced by [`Rid::encode`].
    #[must_use]
    pub fn decode(bytes: &[u8; Self::ENCODED_LEN]) -> Self {
        let mut page = [0u8; 4];
        page.copy_from_slice(&bytes[..4]);
        let mut slot = [0u8; 2];
        slot.copy_from_slice(&bytes[4..]);
        Rid {
            page: PageId::from_be_bytes(page),
            slot: u16::from_be_bytes(slot),
        }
    }
}

impl fmt::Display for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}:{})", self.page, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for rid in [
            Rid::new(0, 0),
            Rid::new(17, 3),
            Rid::new(u32::MAX, u16::MAX),
        ] {
            assert_eq!(Rid::decode(&rid.encode()), rid);
        }
    }

    #[test]
    fn ordering_is_page_major() {
        assert!(Rid::new(1, 9) < Rid::new(2, 0));
        assert!(Rid::new(2, 1) < Rid::new(2, 2));
    }

    #[test]
    fn display_format() {
        assert_eq!(Rid::new(4, 2).to_string(), "(4:2)");
    }
}
