//! Regression tests for the paper's analytical claims (its Table II),
//! checked empirically on scaled-down workloads:
//!
//! | Compression | Bias | Small d (o(n)) | Large d (O(n)) |
//! |---|---|---|---|
//! | Null suppression | unbiased | variance ≤ 1/(4·f·n) | variance ≤ 1/(4·f·n) |
//! | Dictionary (simplified model) | biased | ratio error ≈ 1 | ratio error ≤ constant |

use samplecf::core::theory;
use samplecf::core::{TrialConfig, TrialRunner};
use samplecf::prelude::*;

const N: usize = 20_000;
const WIDTH: u16 = 32;
const FRACTION: f64 = 0.02;
const TRIALS: usize = 40;

fn table(distinct: usize, seed: u64) -> Table {
    presets::variable_length_table("t", N, WIDTH, distinct, 4, 28, seed)
        .generate()
        .unwrap()
        .table
}

fn run(
    table: &Table,
    scheme: &dyn CompressionScheme,
    fraction: f64,
) -> samplecf::core::TrialSummary {
    let spec = IndexSpec::nonclustered("i", ["a"]).unwrap();
    TrialRunner::new(TrialConfig::new(TRIALS).base_seed(1234))
        .run(
            table,
            &spec,
            scheme,
            SamplerKind::UniformWithReplacement(fraction),
        )
        .unwrap()
}

#[test]
fn table2_null_suppression_is_unbiased_with_bounded_variance_small_d() {
    let small_d = table((N as f64).sqrt() as usize, 10);
    let summary = run(&small_d, &NullSuppression, FRACTION);
    assert!(
        summary.relative_bias().abs() < 0.03,
        "NS should be unbiased; relative bias = {}",
        summary.relative_bias()
    );
    let bound = theory::ns_variance_bound(N, FRACTION);
    assert!(
        summary.estimate_stats.population_variance() <= bound * 2.0,
        "variance {} exceeds Theorem 1 bound {}",
        summary.estimate_stats.population_variance(),
        bound
    );
}

#[test]
fn table2_null_suppression_is_unbiased_with_bounded_variance_large_d() {
    let large_d = table(N / 4, 11);
    let summary = run(&large_d, &NullSuppression, FRACTION);
    assert!(
        summary.relative_bias().abs() < 0.03,
        "NS should be unbiased; relative bias = {}",
        summary.relative_bias()
    );
    let bound = theory::ns_variance_bound(N, FRACTION);
    assert!(summary.estimate_stats.population_variance() <= bound * 2.0);
}

#[test]
fn table2_dictionary_small_d_ratio_error_close_to_one() {
    // Small d: with d = 20 and r = 0.1·n = 2000, the estimator's d'/r term is
    // negligible and the expected ratio error approaches 1 (Theorem 2).
    let small_d = table(20, 12);
    let summary = run(&small_d, &GlobalDictionaryCompression::default(), 0.1);
    assert!(
        summary.mean_ratio_error() < 1.3,
        "mean ratio error = {}",
        summary.mean_ratio_error()
    );
}

#[test]
fn table2_dictionary_large_d_ratio_error_bounded_by_constant() {
    // Large d: d = n/4.  Theorem 3 promises a constant bound.
    let large_d = table(N / 4, 13);
    let summary = run(&large_d, &GlobalDictionaryCompression::default(), FRACTION);
    let bound = theory::dc_ratio_error_bound_large_d(0.25, u64::from(WIDTH), 1);
    assert!(
        summary.mean_ratio_error() <= bound,
        "mean ratio error {} exceeds the Theorem 3 style bound {}",
        summary.mean_ratio_error(),
        bound
    );
    assert!(summary.max_ratio_error() < bound * 1.5);
}

#[test]
fn table2_dictionary_estimator_is_biased_unlike_null_suppression() {
    // The paper's Table II marks dictionary compression as biased: at
    // intermediate d the sample systematically misses duplicates, so the
    // estimate's mean deviates from the truth by far more than NS's does.
    let mid_d = table(N / 10, 14);
    let ns = run(&mid_d, &NullSuppression, FRACTION);
    let dc = run(&mid_d, &GlobalDictionaryCompression::default(), FRACTION);
    assert!(
        dc.relative_bias().abs() > ns.relative_bias().abs() * 3.0,
        "DC relative bias {} should dwarf NS relative bias {}",
        dc.relative_bias(),
        ns.relative_bias()
    );
    assert!(dc.relative_bias() > 0.0, "DC overestimates CF (d'/r > d/n)");
}

#[test]
fn theorem1_bound_holds_across_sampling_fractions() {
    let t = table(N, 15);
    let spec = IndexSpec::nonclustered("i", ["a"]).unwrap();
    for fraction in [0.005, 0.01, 0.05] {
        let summary = TrialRunner::new(TrialConfig::new(30).base_seed(7))
            .run(
                &t,
                &spec,
                &NullSuppression,
                SamplerKind::UniformWithReplacement(fraction),
            )
            .unwrap();
        let bound = theory::ns_stddev_bound(N, fraction);
        assert!(
            summary.empirical_std_dev() <= bound * 1.5,
            "f = {fraction}: std {} vs bound {}",
            summary.empirical_std_dev(),
            bound
        );
    }
}

#[test]
fn theorem1_ratio_error_and_bias_sweep_over_fractions() {
    // Statistical regression sweep: for f ∈ {0.005, 0.01, 0.05, 0.1} the NS
    // estimator must stay (a) nearly unbiased and (b) inside a ratio-error
    // envelope derived from Theorem 1's standard-deviation bound
    // σ ≤ 1/(2√(f·n)).  For an unbiased estimator with that σ, the mean
    // ratio error max(est/cf, cf/est) deviates from 1 by about
    // E|est − cf|/cf ≈ √(2/π)·σ/cf, so 2·σ_bound/cf is a generous but
    // meaningful cap.  Everything is seeded, so the run is deterministic —
    // the tolerances guard against regressions in the estimator, the
    // samplers or the NS codec, not against sampling noise.
    let fractions = [0.005, 0.01, 0.05, 0.1];
    // Half-distinct workload (d = n/2); the table itself has N rows.
    let t = table(N / 2, 17);
    let spec = IndexSpec::nonclustered("i", ["a"]).unwrap();
    let mut mean_ratio_errors = Vec::new();
    for fraction in fractions {
        let summary = TrialRunner::new(TrialConfig::new(TRIALS).base_seed(4242))
            .run(
                &t,
                &spec,
                &NullSuppression,
                SamplerKind::UniformWithReplacement(fraction),
            )
            .unwrap();
        // (a) near-zero relative bias at every fraction.
        assert!(
            summary.relative_bias().abs() < 0.02,
            "f = {fraction}: relative bias {}",
            summary.relative_bias()
        );
        // (b) mean ratio error within the Theorem-1-derived envelope.
        let envelope = 1.0 + 2.0 * theory::ns_stddev_bound(N, fraction) / summary.true_cf();
        assert!(
            summary.mean_ratio_error() >= 1.0 && summary.mean_ratio_error() <= envelope,
            "f = {fraction}: mean ratio error {} outside [1, {envelope}]",
            summary.mean_ratio_error()
        );
        // The worst single trial stays within a proportionally wider band.
        let max_envelope = 1.0 + 4.0 * theory::ns_stddev_bound(N, fraction) / summary.true_cf();
        assert!(
            summary.max_ratio_error() <= max_envelope,
            "f = {fraction}: max ratio error {} vs {max_envelope}",
            summary.max_ratio_error()
        );
        mean_ratio_errors.push(summary.mean_ratio_error());
    }
    // Larger samples must not make the estimate worse: the error at the
    // largest fraction is below the error at the smallest.
    assert!(
        mean_ratio_errors[fractions.len() - 1] < mean_ratio_errors[0],
        "ratio error should shrink from f=0.005 ({}) to f=0.1 ({})",
        mean_ratio_errors[0],
        mean_ratio_errors[fractions.len() - 1]
    );
}

#[test]
fn expected_distinct_model_matches_simulation() {
    // The analytic E[d'] model used by the theory module matches what uniform
    // with-replacement sampling actually observes.
    let d = 500;
    let t = table(d, 16);
    let spec = IndexSpec::nonclustered("i", ["a"]).unwrap();
    let fraction = 0.05;
    let mut observed = Vec::new();
    for seed in 0..20u64 {
        let est = SampleCf::with_fraction(fraction)
            .seed(seed)
            .estimate(&t, &spec, &GlobalDictionaryCompression::default())
            .unwrap();
        observed.push(est.data.distinct_first_key as f64);
    }
    let mean_d_prime = observed.iter().sum::<f64>() / observed.len() as f64;
    let r = (N as f64 * fraction).round() as u64;
    let expected = theory::expected_sample_distinct(d as u64, r);
    let ratio = mean_d_prime / expected;
    assert!(
        (0.95..1.05).contains(&ratio),
        "observed mean d' {mean_d_prime} vs model {expected}"
    );
}
