//! Minimal stand-in for the parts of `proptest 1.x` that the `samplecf`
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `proptest` to this crate by path (see the
//! `[workspace.dependencies]` entries in the root `Cargo.toml`).  It
//! keeps the property-based *testing model* — strategies
//! compose with `prop_map`/`prop_flat_map`/`prop_oneof!`, the [`proptest!`]
//! macro runs each property over many generated cases, and `prop_assert*!`
//! report failures as [`test_runner::TestCaseError`] — but drops shrinking:
//! a failing case reports its case number and the deterministic per-test
//! seed instead of a minimised counterexample.
//!
//! Supported surface:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_flat_map`, `boxed`,
//!   implemented for integer ranges, tuples, `Vec<S>`, [`strategy::Just`],
//! * [`collection::vec`] with `Range`/`RangeInclusive`/`usize` sizes,
//! * [`string::string_regex`] for a practical regex subset (character
//!   classes, `.`, escapes, `{m,n}`/`*`/`+`/`?` quantifiers),
//! * [`arbitrary::Arbitrary`] / [`prelude::any`] for primitives (with
//!   edge-case biasing toward `MIN`/`MAX`/zero),
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assert_ne!`] macros.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface test files use: `use proptest::prelude::*;`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
///
/// An optional leading `#![proptest_config(expr)]` sets the configuration
/// (only the case count is honoured by this stand-in).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for_case(case);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = result {
                        ::std::panic!(
                            "property '{}' failed at case {}/{} (seed {}): {}",
                            stringify!($name),
                            case,
                            runner.cases(),
                            runner.seed(),
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Choose between several strategies producing the same value type, with
/// optional integer weights: `prop_oneof![2 => a, 1 => b]` or
/// `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Like `assert!`, but reports the failure as a [`test_runner::TestCaseError`]
/// (usable with `?` inside [`proptest!`] bodies and helper functions).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!`, but reports the failure as a
/// [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left), stringify!($right), l, r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            ::std::format!($($fmt)+), l, r
                        ),
                    ));
                }
            }
        }
    };
}

/// Like `assert_ne!`, but reports the failure as a
/// [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l
                        ),
                    ));
                }
            }
        }
    };
}
