//! Error types for the compression crate.

use std::fmt;

/// Errors produced while compressing or decompressing column chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressionError {
    /// A value in the chunk does not conform to the chunk's declared data type.
    TypeMismatch {
        /// Declared data type of the chunk.
        expected: String,
        /// Runtime kind of the offending value.
        found: String,
    },
    /// The compressed byte stream was malformed.
    Corrupt(String),
    /// A configuration parameter was invalid (e.g. zero-width pointers).
    InvalidConfig(String),
    /// The shared (global) dictionary required to decode a chunk was missing.
    MissingSharedState(&'static str),
}

impl fmt::Display for CompressionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressionError::TypeMismatch { expected, found } => {
                write!(
                    f,
                    "type mismatch: chunk declared {expected}, found {found} value"
                )
            }
            CompressionError::Corrupt(msg) => write!(f, "corrupt compressed data: {msg}"),
            CompressionError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CompressionError::MissingSharedState(what) => {
                write!(f, "missing shared state: {what}")
            }
        }
    }
}

impl std::error::Error for CompressionError {}

/// Result alias for compression operations.
pub type CompressionResult<T> = Result<T, CompressionError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = CompressionError::TypeMismatch {
            expected: "char(4)".into(),
            found: "integer".into(),
        };
        assert!(e.to_string().contains("char(4)"));
        assert!(CompressionError::Corrupt("truncated".into())
            .to_string()
            .contains("truncated"));
        assert!(CompressionError::MissingSharedState("dictionary")
            .to_string()
            .contains("dictionary"));
    }
}
