//! # samplecf-server
//!
//! `samplecfd`: a concurrent compression-fraction estimation **service**.
//!
//! The paper's pitch is that CF estimation is cheap enough to run inside a
//! live tuning loop — Kimura et al.'s compression-aware advisor assumes an
//! always-on "what-if" service, and Nirkhiwale et al.'s sampling algebra
//! treats samples as reusable server-side state.  This crate is that
//! service layer: a std-only threaded TCP daemon speaking a small
//! line-delimited JSON protocol (`register`, `estimate`,
//! `estimate_progressive`, `advise`, `info`, `stats`, `metrics`,
//! `shutdown`), backed by
//!
//! * a [`TableCatalog`] of registered
//!   [`DiskTable`](samplecf_storage::DiskTable)s, handed out as
//!   [`SharedSource`](samplecf_storage::SharedSource) handles so every
//!   request for a table shares one identity, and
//! * a [`ConcurrentSampleCache`]: one
//!   materialized sample per *(table, sampler, fraction, seed)* group,
//!   with duplicate in-flight requests coalesced onto one draw,
//!   progressive deepening of shallow samples
//!   (`SampleCache::get_or_deepen` semantics under concurrency), and LRU
//!   eviction against a byte budget, and
//! * one [`MetricsRegistry`] per server, threaded through every layer:
//!   request/error counters, per-kind and per-stage latency histograms
//!   (accept → parse → queue-wait → execute → serialize → drain → write), cache
//!   and catalog counters, progressive-estimator and advisor instruments.
//!   The `metrics` op exposes it all in Prometheus-style text; `samplecf
//!   top ADDR` renders a live view over `stats`.
//!
//! Results are **byte-identical to the single-shot `samplecf` CLI**
//! seed-for-seed — the cache serves exactly the rows a fresh draw would
//! produce — and every response reports what the request physically cost
//! (`pages_read`, cache hit/miss/deepened, sample rows).
//!
//! The protocol is specified in `docs/API.md`; `ARCHITECTURE.md` has the
//! catalog/cache/worker data-flow diagram.
//!
//! ## Quickstart (in-process)
//!
//! ```no_run
//! use samplecf_server::{Server, ServerConfig};
//!
//! let handle = Server::bind("127.0.0.1:0", ServerConfig::default())?;
//! println!("samplecfd listening on {}", handle.addr());
//! handle.run(); // blocks until a client sends {"op":"shutdown"}
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod cache;
pub mod catalog;
pub mod json;
pub mod poll;
pub mod protocol;
pub mod server;
pub mod service;

pub use cache::{AcquiredSample, CacheStats, ConcurrentSampleCache, DEFAULT_CACHE_BUDGET_BYTES};
pub use catalog::{CatalogEntry, TableCatalog};
pub use json::Json;
pub use protocol::{table_info_json, ApiError, CacheDisposition};
pub use samplecf_obs::{MetricsRegistry, RegistrySnapshot, Stage, StageTimings};
pub use server::{Server, ServerConfig, ServerHandle};
pub use service::{RequestKind, ServiceState};
