//! **Server throughput experiment** — the service-layer claims, measured:
//!
//! 1. **Coalescing** (closed loop): an in-process `samplecfd` serving N
//!    concurrent client threads issuing a mixed estimate/advise workload
//!    reads the sampled pages **once per cache group**, while the naive
//!    one-process-per-request baseline pays the draw I/O on every request.
//! 2. **Open-loop load**: thousands of concurrent connections driven on a
//!    fixed arrival schedule through [`crate::load`], reporting achieved
//!    req/s and p50/p95/p99 latency — the numbers that go into the
//!    committed `BENCH_server.json` trajectory.  The event loop makes
//!    this possible at all: connections cost file descriptors, not
//!    threads.
//! 3. **Sharding**: the same deterministic multi-table workload against a
//!    single-lock (1-shard) and a sharded sample cache.  Every miss in a
//!    budget-bound cache pays an LRU scan of its shard, so the single
//!    lock scans the *whole* cache per eviction where a shard scans
//!    `1/shards` of it — the experiment asserts the sharded
//!    configuration is measurably faster, on one core, with no
//!    contention required.
//!
//! All over real TCP sockets (sections 1–2), not simulated — this is the
//! ROADMAP's "serve heavy traffic" direction made into an experiment, and
//! the always-on "what-if" service Kimura et al.'s compression-aware
//! advisor assumes.

use crate::load::{run_load, LoadConfig};
use crate::report::{fmt, Report, Table};
use samplecf_core::SampleCf;
use samplecf_datagen::presets;
use samplecf_index::IndexSpec;
use samplecf_obs::{HistogramSnapshot, MetricValue};
use samplecf_sampling::SamplerKind;
use samplecf_server::{ConcurrentSampleCache, Json, Server, ServerConfig};
use samplecf_storage::{CountingSource, DiskTable, IntoShared, SharedSource, TableSource};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// The request mix one closed-loop client thread sends, round-robin.
fn request_line(i: usize) -> String {
    const SCHEMES: [&str; 3] = ["dictionary-global", "null-suppression", "rle"];
    if i % 4 == 3 {
        // Every fourth request is an advise over three candidates.
        r#"{"op":"advise","table":"tp_t","sampler":"block","fraction":0.05,"seed":1,"candidates":[{"index":"idx_dict","scheme":"dictionary-global"},{"index":"idx_ns","scheme":"null-suppression"},{"index":"pk","scheme":"rle","clustered":true}]}"#
            .to_string()
    } else {
        // Estimates cycle schemes but share one (sampler, fraction, seed)
        // cache group — the server draws once for all of them.
        format!(
            r#"{{"op":"estimate","table":"tp_t","sampler":"block","fraction":0.05,"scheme":"{}","seed":1}}"#,
            SCHEMES[i % SCHEMES.len()]
        )
    }
}

/// The open-loop mix: mostly cached estimates over a handful of groups,
/// plus metadata and stats traffic — a plausible tuning-service profile.
fn open_loop_request(i: usize) -> String {
    match i % 10 {
        0 => r#"{"op":"stats"}"#.to_string(),
        1 => r#"{"op":"info","table":"tp_t"}"#.to_string(),
        _ => format!(
            r#"{{"op":"estimate","table":"tp_t","sampler":"block","fraction":0.02,"scheme":"null-suppression","seed":{}}}"#,
            i % 4
        ),
    }
}

/// Run the experiment.
#[allow(clippy::too_many_lines)]
pub fn run(quick: bool) -> Report {
    let rows = if quick { 40_000 } else { 120_000 };
    let requests_per_client = if quick { 8 } else { 24 };
    let client_counts: &[usize] = if quick { &[1, 4, 8] } else { &[1, 2, 4, 8, 16] };
    let fraction = 0.05;

    let generated = presets::variable_length_table("tp_t", rows, 24, rows / 100, 4, 20, 97)
        .generate()
        .expect("generation succeeds");
    let path = std::env::temp_dir().join(format!(
        "samplecf_exp_server_throughput_{}.scf",
        std::process::id()
    ));
    let disk = DiskTable::materialize(&path, &generated.table).expect("materialisation succeeds");
    let num_pages = disk.num_pages();
    let pages_per_draw = ((num_pages as f64) * fraction).round().max(1.0) as u64;
    drop(disk);

    let mut report = Report::new("exp_server_throughput");

    // ---------------------------------------------------------------
    // Section 1: closed-loop coalescing (one draw per cache group).
    // ---------------------------------------------------------------
    let mut t = Table::new(
        format!(
            "samplecfd vs one-process-per-request (n = {rows}, {num_pages} pages on disk, \
             block sampling f = {fraction}, {requests_per_client} requests/client over TCP)"
        ),
        &[
            "clients",
            "requests",
            "req/s",
            "server pages",
            "naive pages",
            "I/O ratio",
            "hits",
            "coalesced",
        ],
    );

    for &clients in client_counts {
        // A fresh server per row so cache counters start clean.
        let handle = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: clients.max(4),
                ..ServerConfig::default()
            },
        )
        .expect("bind succeeds");
        let addr = handle.addr();
        {
            let entry = handle
                .state()
                .catalog
                .register(&path.to_string_lossy(), None)
                .expect("register succeeds");
            assert_eq!(entry.shared.num_pages(), num_pages);
        }

        let total_requests = clients * requests_per_client;
        let started = Instant::now();
        std::thread::scope(|scope| {
            for client in 0..clients {
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let mut writer = stream.try_clone().expect("clone");
                    let mut reader = BufReader::new(stream);
                    let mut line = String::new();
                    for i in 0..requests_per_client {
                        let request = request_line(client * requests_per_client + i);
                        writer
                            .write_all(request.as_bytes())
                            .and_then(|()| writer.write_all(b"\n"))
                            .expect("send");
                        line.clear();
                        reader.read_line(&mut line).expect("receive");
                        let reply = Json::parse(line.trim()).expect("valid reply");
                        assert_eq!(
                            reply.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "request failed: {reply}"
                        );
                    }
                });
            }
        });
        let elapsed = started.elapsed();

        let stats = handle.state().cache.stats();
        handle.shutdown();

        // Naive baseline: every request re-draws its sample, so it pays
        // one full draw per request (advise draws once for its three
        // candidates in-process, so it still counts one draw here — the
        // baseline is one *process* per request, not one per candidate).
        let naive_pages = pages_per_draw * total_requests as u64;
        assert_eq!(
            stats.pages_read, pages_per_draw,
            "all requests share one cache group: one draw total"
        );
        t.row(&[
            clients.to_string(),
            total_requests.to_string(),
            fmt(total_requests as f64 / elapsed.as_secs_f64()),
            stats.pages_read.to_string(),
            naive_pages.to_string(),
            fmt(naive_pages as f64 / stats.pages_read.max(1) as f64),
            stats.hits.to_string(),
            stats.coalesced_waits.to_string(),
        ]);
    }

    // Ground the baseline column in a measurement rather than arithmetic:
    // one client-side estimate run reads exactly pages_per_draw pages.
    let disk = DiskTable::open(&path).expect("reopen succeeds");
    let counting = CountingSource::new(&disk);
    let spec = IndexSpec::nonclustered("idx", ["a"]).expect("valid spec");
    SampleCf::new(SamplerKind::Block(fraction))
        .seed(1)
        .estimate(
            &counting,
            &spec,
            samplecf_compression::scheme_by_name("dictionary-global")
                .expect("known scheme")
                .as_ref(),
        )
        .expect("estimation succeeds");
    assert_eq!(counting.pages_read(), pages_per_draw);
    drop(counting);
    drop(disk);

    t.note(
        "Measured shape: the server's pages-read column is flat at round(f·N) — one draw per \
         (table, sampler, fraction, seed) group however many clients hammer it, with duplicate \
         in-flight requests coalesced onto the first draw (the `coalesced` column counts the \
         waits) — while the naive one-process-per-request baseline re-reads the sample every \
         time, so its I/O grows linearly with the request count.",
    );
    report.add(t);

    // ---------------------------------------------------------------
    // Section 2: open-loop load over thousands of connections.
    // ---------------------------------------------------------------
    let (connections, rate, requests) = if quick {
        (200, 400.0, 1_200)
    } else {
        (2_048, 2_000.0, 12_288)
    };
    // A deep queue keeps the overload regime queue-dominated instead of
    // busy-dominated: requests wait (and are measured waiting) rather
    // than bouncing, which is also what makes the stage-level accounting
    // below meaningful at the tail.
    let handle = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            queue_depth: 8_192,
            // One worker per core: oversubscribing a small machine makes
            // the event loop fight its own workers for timeslices, which
            // shows up directly as drain-stage tail latency.
            workers: std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get),
            ..ServerConfig::default()
        },
    )
    .expect("bind succeeds");
    handle
        .state()
        .catalog
        .register(&path.to_string_lossy(), None)
        .expect("register succeeds");
    let load_config = LoadConfig {
        connections,
        rate,
        requests,
        deadline: Duration::from_secs(120),
    };
    let outcome = run_load(handle.addr(), &load_config, open_loop_request);
    let accepted = handle.state().gauges.connections_accepted();
    // The registry is Arc-shared with the server; after shutdown() joins
    // the event loop, every request observation has been drained into it.
    let registry = handle.state().metrics.clone();
    handle.shutdown();

    assert!(
        accepted >= connections as u64,
        "server accepted {accepted} < {connections} connections"
    );
    assert_eq!(
        outcome.connections_served, connections,
        "every connection must complete at least one request"
    );
    assert_eq!(outcome.errors, 0, "no request may fail: {outcome:?}");
    assert_eq!(outcome.unanswered, 0, "every request must be answered");
    assert_eq!(outcome.ok + outcome.busy, outcome.sent);

    // ---------------------------------------------------------------
    // Section 2b: the observability layer cross-checked against the
    // load harness's own accounting, plus stage-level latency math.
    // ---------------------------------------------------------------
    let snap = registry.snapshot();
    let histogram = |name: &str| -> HistogramSnapshot {
        match snap.get(name) {
            Some(MetricValue::Histogram(h)) => (**h).clone(),
            other => panic!("{name} is not a histogram: {other:?}"),
        }
    };
    // Merge every per-kind duration histogram into one e2e distribution.
    let mut e2e = HistogramSnapshot::empty();
    let mut dispatched = 0u64;
    for kind in samplecf_server::RequestKind::ALL {
        e2e.merge(&histogram(&format!(
            "samplecf_request_duration_ns{{op=\"{}\"}}",
            kind.name()
        )));
        if let Some(MetricValue::Counter(n)) = snap.get(&format!(
            "samplecf_requests_total{{op=\"{}\"}}",
            kind.name()
        )) {
            dispatched += n;
        }
    }
    // Busy rejections are answered by the event loop without dispatch, so
    // the registry's request count must equal the harness's ok count —
    // the in-process assertion the issue asks load harnesses to make.
    assert_eq!(
        dispatched, outcome.ok as u64,
        "registry request counters disagree with the client-side ok count"
    );
    assert_eq!(
        e2e.count, outcome.ok as u64,
        "every dispatched request must be observed exactly once"
    );

    let stage = |name: &str| histogram(&format!("samplecf_stage_duration_ns{{stage=\"{name}\"}}"));
    let stage_names = ["parse", "queue_wait", "execute", "serialize", "drain"];
    let request_stages = stage_names.map(stage);
    // Exact-sum coverage: the five per-request stages are measured inside
    // each request's total clock — `drain` is defined as the residual the
    // other spans did not claim — so their summed nanoseconds equal the
    // summed end-to-end totals exactly.
    let staged_ns: u64 = request_stages.iter().map(|h| h.sum).sum();
    let coverage = staged_ns as f64 / e2e.sum.max(1) as f64;
    assert!(
        coverage <= 1.0,
        "stage sums exceed the end-to-end sum: {staged_ns} / {}",
        e2e.sum
    );
    assert!(
        coverage >= 0.999,
        "stages explain only {coverage:.4} of end-to-end time (drain residual missing?)"
    );
    // Quantile-level consistency: the sum of per-stage p99s against the
    // e2e p99.  Quantiles are not additive in general — the full-mode load
    // drives the server deep into its queue so the tail has one dominant
    // owner (queue_wait), where the sum *does* explain the e2e p99.  Quick
    // mode runs a small sample at mild load, where per-stage tails land on
    // different requests, so it only reports the ratio.
    let stage_p99_sum_ns: f64 = request_stages.iter().map(|h| h.quantile(0.99)).sum();
    let e2e_p99_ns = e2e.quantile(0.99);
    let p99_ratio = stage_p99_sum_ns / e2e_p99_ns.max(1.0);
    if !quick {
        assert!(
            (0.9..=1.1).contains(&p99_ratio),
            "stage p99 sum must explain the e2e p99 within 10%, got {p99_ratio:.3} \
             ({stage_p99_sum_ns:.0}ns vs {e2e_p99_ns:.0}ns)"
        );
    }
    let latency_accounting = LatencyAccounting {
        coverage,
        stage_p99_sum_ms: stage_p99_sum_ns / 1e6,
        e2e_p99_ms: e2e_p99_ns / 1e6,
        p99_ratio,
    };

    let mut t = Table::new(
        format!(
            "open-loop load: {connections} concurrent connections, {rate} req/s arrival \
             schedule, {requests} mixed requests (estimate/info/stats)"
        ),
        &[
            "connections",
            "requests",
            "achieved req/s",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "max ms",
            "busy",
        ],
    );
    t.row(&[
        connections.to_string(),
        outcome.sent.to_string(),
        fmt(outcome.achieved_rps),
        fmt(outcome.p50_ms),
        fmt(outcome.p95_ms),
        fmt(outcome.p99_ms),
        fmt(outcome.max_ms),
        outcome.busy.to_string(),
    ]);
    t.note(
        "Open loop: request i is *sent* at start + i/rate whether or not earlier responses \
         arrived, and latency is measured from that scheduled instant — server-side queueing \
         counts against the server (no coordinated omission).  Every connection stays open for \
         the whole run and completes at least one request; the generator drives all of them \
         from one thread through the same epoll/kqueue abstraction the server's event loop \
         uses, so neither side spends a thread per connection.",
    );
    report.add(t);

    let mut t = Table::new(
        "stage-level latency accounting from the server's metrics registry (same run)".to_string(),
        &["statistic", "value"],
    );
    t.row(&[
        "stage-sum coverage of e2e time".to_string(),
        format!("{:.1}%", latency_accounting.coverage * 100.0),
    ]);
    for (name, h) in stage_names.iter().zip(&request_stages) {
        t.row(&[
            format!("stage p99: {name}"),
            format!("{:.3} ms", h.quantile(0.99) / 1e6),
        ]);
    }
    t.row(&[
        "Σ per-stage p99 (parse + queue_wait + execute + serialize + drain)".to_string(),
        format!("{:.3} ms", latency_accounting.stage_p99_sum_ms),
    ]);
    t.row(&[
        "e2e p99 (merged per-op histograms)".to_string(),
        format!("{:.3} ms", latency_accounting.e2e_p99_ms),
    ]);
    t.row(&[
        "p99 ratio (stage sum / e2e)".to_string(),
        format!("{:.3}", latency_accounting.p99_ratio),
    ]);
    t.note(
        "Server-side view of the same load run, read from the in-process metrics registry the \
         `metrics` op exposes.  Every dispatched request is observed exactly once (count \
         cross-checked against the harness's ok tally above), the five per-request stages are \
         measured inside each request's own clock — `drain` is the residual no other span \
         claims — so their sums equal the end-to-end sum exactly, and the per-stage p99s add \
         up to the e2e p99 — the property that \
         lets an operator read `samplecf top`'s stage breakdown as an explanation of tail \
         latency rather than a loose correlate.  Client-side latency above is measured from \
         the scheduled send instant and so includes socket transit and scheduling delay the \
         server never sees.",
    );
    report.add(t);
    let _ = std::fs::remove_file(&path);

    // ---------------------------------------------------------------
    // Section 3: sharded vs single-lock cache on one deterministic
    // multi-table workload.
    // ---------------------------------------------------------------
    let ops = if quick { 512 } else { 1_024 };
    let resident = if quick { 1_024 } else { 4_096 };
    let (single_rps, sharded_rps) = shard_comparison(ops, resident);
    assert!(
        sharded_rps > single_rps,
        "sharded cache must outperform the single lock: {sharded_rps:.0} vs {single_rps:.0} ops/s"
    );
    let mut t = Table::new(
        format!(
            "sharded vs single-lock sample cache ({ops} ops/pass, ~{resident} resident \
             entries, 4 tables, best of 3 interleaved passes)"
        ),
        &["configuration", "ops/s", "speedup"],
    );
    t.row(&[
        "1 shard (single lock)".to_string(),
        fmt(single_rps),
        fmt(1.0),
    ]);
    t.row(&[
        "8 shards".to_string(),
        fmt(sharded_rps),
        fmt(sharded_rps / single_rps),
    ]);
    t.note(
        "The workload is identical and deterministic for both configurations: a stream of \
         mostly-missing acquires across 4 tables against a byte budget that keeps the cache \
         full, so every miss pays an insert plus an LRU eviction scan of its shard.  The \
         single lock scans the whole cache per eviction; a shard scans 1/8th of it — the \
         speedup is algorithmic (O(entries/shards) per eviction), measurable on one core, \
         before any lock-contention benefit on multi-core hardware is counted.",
    );
    report.add(t);

    write_bench_json(
        quick,
        connections,
        rate,
        &outcome,
        &latency_accounting,
        single_rps,
        sharded_rps,
    );
    report
}

/// Stage-level latency math derived from the metrics registry.
struct LatencyAccounting {
    /// Fraction of summed end-to-end nanoseconds the four per-request
    /// stages account for.
    coverage: f64,
    /// Sum of the per-stage p99s, milliseconds.
    stage_p99_sum_ms: f64,
    /// p99 of the merged per-op duration histograms, milliseconds.
    e2e_p99_ms: f64,
    /// `stage_p99_sum_ms / e2e_p99_ms`.
    p99_ratio: f64,
}

/// Time one deterministic acquire stream against a 1-shard and an 8-shard
/// cache (same budget, same seeds); returns (single, sharded) ops/sec as
/// the best of 3 interleaved passes.
fn shard_comparison(ops: usize, resident: usize) -> (f64, f64) {
    // Four tiny in-memory tables: each draw is microseconds, so the
    // per-miss eviction scan dominates the op cost once the cache is full.
    let tables: Vec<SharedSource> = (0..4)
        .map(|i| {
            presets::single_char_table(&format!("shard_t{i}"), 128, 16, 24, 8, 100 + i as u64)
                .generate()
                .expect("generation succeeds")
                .table
                .into_shared()
        })
        .collect();
    let kind = SamplerKind::Block(0.5);

    // Price one entry, then budget for `resident` of them.
    let probe = samplecf_core::CachedSample::draw_streaming(&tables[0], kind, u64::MAX)
        .expect("probe draw");
    let budget = probe.approx_bytes() * resident;
    // Enough warm-up inserts to fill the cache past its budget, so the
    // timed pass runs entirely in the full-cache (evicting) regime.
    let warm = resident + resident / 4;

    let run_pass = |cache: &ConcurrentSampleCache, base_seed: u64, count: usize| -> Duration {
        let started = Instant::now();
        for i in 0..count {
            // Mixed: every 8th op re-acquires the previous group (a hit);
            // the rest are fresh groups (miss + insert + eviction scan).
            let seed = base_seed + if i % 8 == 7 { i as u64 - 1 } else { i as u64 };
            let table = &tables[(seed as usize) % tables.len()];
            cache.acquire(table, kind, seed).expect("acquire succeeds");
        }
        started.elapsed()
    };

    let mut best_single = Duration::MAX;
    let mut best_sharded = Duration::MAX;
    for trial in 0..3u64 {
        for (shards, best) in [(1usize, &mut best_single), (8usize, &mut best_sharded)] {
            let cache = ConcurrentSampleCache::with_shards(budget, shards);
            let base = trial * 1_000_000;
            run_pass(&cache, base, warm);
            let elapsed = run_pass(&cache, base + 500_000, ops);
            *best = (*best).min(elapsed);
        }
    }
    (
        ops as f64 / best_single.as_secs_f64(),
        ops as f64 / best_sharded.as_secs_f64(),
    )
}

/// Persist the machine-readable baseline (`BENCH_server.json` at the
/// workspace root, `SAMPLECF_BENCH_FILE` to override) so future PRs can
/// track the trajectory.
fn write_bench_json(
    quick: bool,
    connections: usize,
    rate: f64,
    outcome: &crate::load::LoadOutcome,
    latency_accounting: &LatencyAccounting,
    single_rps: f64,
    sharded_rps: f64,
) {
    let path =
        std::env::var("SAMPLECF_BENCH_FILE").unwrap_or_else(|_| "BENCH_server.json".to_string());
    let round = |v: f64| (v * 1000.0).round() / 1000.0;
    let doc = Json::obj()
        .field("bench", Json::Str("server_load".to_string()))
        .field(
            "mode",
            Json::Str(if quick { "quick" } else { "full" }.to_string()),
        )
        .field(
            "config",
            Json::obj()
                .field("connections", Json::uint(connections as u64))
                .field("rate_rps", Json::Num(rate))
                .field("requests", Json::uint(outcome.sent as u64)),
        )
        .field(
            "results",
            Json::obj()
                .field("achieved_rps", Json::Num(round(outcome.achieved_rps)))
                .field("p50_ms", Json::Num(round(outcome.p50_ms)))
                .field("p95_ms", Json::Num(round(outcome.p95_ms)))
                .field("p99_ms", Json::Num(round(outcome.p99_ms)))
                .field("max_ms", Json::Num(round(outcome.max_ms)))
                .field("ok", Json::uint(outcome.ok as u64))
                .field("busy", Json::uint(outcome.busy as u64))
                .field("errors", Json::uint(outcome.errors as u64))
                .field(
                    "connections_served",
                    Json::uint(outcome.connections_served as u64),
                ),
        )
        .field(
            "latency_accounting",
            Json::obj()
                .field(
                    "stage_sum_coverage",
                    Json::Num(round(latency_accounting.coverage)),
                )
                .field(
                    "stage_p99_sum_ms",
                    Json::Num(round(latency_accounting.stage_p99_sum_ms)),
                )
                .field(
                    "e2e_p99_ms",
                    Json::Num(round(latency_accounting.e2e_p99_ms)),
                )
                .field("p99_ratio", Json::Num(round(latency_accounting.p99_ratio))),
        )
        .field(
            "sharded_cache",
            Json::obj()
                .field("single_lock_ops_per_s", Json::Num(round(single_rps)))
                .field("sharded_ops_per_s", Json::Num(round(sharded_rps)))
                .field("speedup", Json::Num(round(sharded_rps / single_rps))),
        );
    let body = doc.pretty() + "\n";
    // Sanity: the file we commit must parse back.
    Json::parse(body.trim()).expect("bench json round-trips");
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}
