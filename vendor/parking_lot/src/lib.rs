//! Minimal stand-in for the parts of `parking_lot 0.12` that the `samplecf`
//! workspace uses, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `parking_lot` to this crate by path (see the
//! `[workspace.dependencies]` entries in the root `Cargo.toml`).  Unlike
//! the real crate this is a thin wrapper over the standard library locks;
//! matching `parking_lot` semantics, poisoned locks
//! are recovered rather than propagated (a panicking reader/writer does not
//! wedge the catalog).

use std::sync::{self, TryLockError};

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A reader-writer lock with the `parking_lot` API: `read`/`write` return
/// guards directly (no `Result`), and poisoning is transparently recovered.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Get a mutable reference to the underlying data (requires `&mut self`,
    /// so no locking is necessary).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutex with the `parking_lot` API: `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn rwlock_default_and_debug() {
        let lock: RwLock<Vec<u32>> = RwLock::default();
        assert!(lock.read().is_empty());
        let _ = format!("{lock:?}");
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }
}
