//! **Disk I/O experiment** — what the paper's Section II-C argues but never
//! measures: on a *disk-resident* table, block (page) sampling reads only
//! `round(f · N)` physical pages, while uniform row sampling pays roughly
//! one page read per sampled row.  The table is materialised to a real file
//! ([`DiskTable`]) and every page access is counted by [`CountingSource`],
//! so pages-read and wall-clock are measured, not simulated.

use crate::report::{fmt, Report, Table};
use samplecf_compression::GlobalDictionaryCompression;
use samplecf_core::{ExactCf, SampleCf};
use samplecf_datagen::presets;
use samplecf_index::IndexSpec;
use samplecf_sampling::{CountingSource, SamplerKind};
use samplecf_storage::{DiskTable, TableSource};
use std::time::Instant;

/// Run the experiment.
pub fn run(quick: bool) -> Report {
    let rows = if quick { 50_000 } else { 200_000 };
    let trials = if quick { 5 } else { 20 };
    let d = rows / 100;
    let spec = IndexSpec::nonclustered("idx_a", ["a"]).expect("valid spec");
    let scheme = GlobalDictionaryCompression::default();

    let generated = presets::variable_length_table("disk_io", rows, 24, d, 4, 20, 97)
        .generate()
        .expect("generation succeeds");
    let path =
        std::env::temp_dir().join(format!("samplecf_exp_disk_io_{}.scf", std::process::id()));
    let disk = DiskTable::materialize(&path, &generated.table).expect("materialisation succeeds");
    let num_pages = disk.num_pages();

    let counting = CountingSource::new(&disk);
    let exact_start = Instant::now();
    let exact = ExactCf::new()
        .compute(&counting, &spec, &scheme)
        .expect("exact computation succeeds");
    let exact_elapsed = exact_start.elapsed();
    let exact_pages = counting.pages_read();

    let mut report = Report::new("exp_disk_block_io");
    let mut t = Table::new(
        format!(
            "On-disk block vs row sampling (n = {rows}, d = {d}, {num_pages} pages of 8 KiB, \
             dictionary-global, {trials} trials)"
        ),
        &[
            "sampler",
            "f",
            "mean CF",
            "ratio error",
            "pages read / trial",
            "% of pages",
            "ms / trial",
        ],
    );
    t.row(&[
        "exact (full scan)".to_string(),
        "—".to_string(),
        fmt(exact.cf),
        fmt(1.0),
        exact_pages.to_string(),
        fmt(100.0 * exact_pages as f64 / num_pages as f64),
        fmt(exact_elapsed.as_secs_f64() * 1000.0),
    ]);

    for f in [0.01, 0.05] {
        for sampler in [
            SamplerKind::Block(f),
            SamplerKind::UniformWithReplacement(f),
        ] {
            counting.reset();
            let started = Instant::now();
            let mut cf_sum = 0.0;
            for trial in 0..trials {
                let est = SampleCf::new(sampler)
                    .seed(1000 + trial as u64)
                    .estimate(&counting, &spec, &scheme)
                    .expect("estimation succeeds");
                cf_sum += est.cf;
            }
            let elapsed = started.elapsed();
            let mean_cf = cf_sum / trials as f64;
            let pages_per_trial = counting.pages_read() as f64 / trials as f64;
            t.row(&[
                sampler.label(),
                fmt(f),
                fmt(mean_cf),
                fmt(samplecf_core::ratio_error(mean_cf, exact.cf)),
                fmt(pages_per_trial),
                fmt(100.0 * pages_per_trial / num_pages as f64),
                fmt(elapsed.as_secs_f64() * 1000.0 / trials as f64),
            ]);
        }
    }
    t.note(
        "Measured shape: block sampling at fraction f reads almost exactly f·N pages (the ±1 \
         is the max(1, round(...)) sizing), whereas uniform row sampling issues one page read \
         per drawn row — at f = 0.01 on this table that is ~2.8x the whole file, and the \
         wall-clock gap tracks the page counts.  The CF estimates of the two samplers are \
         comparable on this shuffled layout (clustered layouts are the `block_sampling` \
         experiment's subject), so on disk-resident data block sampling dominates: same \
         accuracy, orders of magnitude less I/O.  This is the claim Section II-C of the paper \
         makes for why commercial systems sample blocks, reproduced with real file reads.",
    );
    report.add(t);
    drop(counting);
    drop(disk);
    let _ = std::fs::remove_file(&path);
    report
}
