//! Fixed-bucket log-linear histograms with lock-free recording.
//!
//! Every histogram has the same [`BUCKETS`] buckets on a log₂-scale
//! skeleton refined linearly inside each octave (the HdrHistogram layout):
//!
//! * values `0..=32` get **unit-width** buckets (`le` = 1, 2, …, 32);
//! * each octave `(2^k, 2^(k+1)]` above that is split into 16 linear
//!   sub-buckets of width `2^(k-4)`, so the relative bucket width is a
//!   constant ≤ 6.25% everywhere;
//! * one overflow bucket holds values above `2^63`.
//!
//! Upper bounds stay **exact at powers of two** — recording `2^k` lands in
//! the bucket whose `le` boundary is `2^k`, never the next one — which
//! keeps latency thresholds honest and is pinned by the proptest suite.
//! The linear refinement is what makes bucketed p99s tight enough for the
//! load harness to check stage-sum-vs-e2e quantile consistency within 10%.
//!
//! Recording is three relaxed atomic adds (bucket, sum, count); there is no
//! lock anywhere.  [`HistogramSnapshot`] is plain data: mergeable
//! (element-wise add, associative and commutative) and quantile-queryable
//! with within-bucket linear interpolation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// log₂ of the sub-bucket count: each octave holds `2^SUB_BITS / 2` new
/// boundaries (the lower half of an octave is covered by finer octaves
/// below it).
const SUB_BITS: usize = 5;
/// Size of the unit-width region: values `0..=SUBS` get exact buckets.
const SUBS: usize = 1 << SUB_BITS;
/// New boundaries contributed by each octave above the unit region.
const HALF: usize = SUBS / 2;
/// Octaves `(2^k, 2^(k+1)]` for `k` in `SUB_BITS..=62`; `(2^62, 2^63]` is
/// the last refined octave, values above `2^63` overflow.
const OCTAVES: usize = 63 - SUB_BITS;

/// Number of buckets in every histogram: the unit region, the refined
/// octaves, and the overflow bucket.
pub const BUCKETS: usize = SUBS + OCTAVES * HALF + 1;

/// Index of the bucket a value lands in.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v <= SUBS as u64 {
        // Unit region: le = 1, 2, ..., 32 at indices 0..32 (0 shares 1's).
        (v.saturating_sub(1)) as usize
    } else {
        // ceil(log2(v)) via the bit length of v - 1; v > 32 so bits >= 6.
        let bits = 64 - (v - 1).leading_zeros() as usize;
        let k = bits - 1; // octave (2^k, 2^(k+1)]
        if k >= 63 {
            return BUCKETS - 1; // overflow: v > 2^63
        }
        // Sub-bucket width inside the octave is 2^(k+1)/32 = 2^(k+1-SUB_BITS).
        let w = k + 1 - SUB_BITS;
        let sub = (((v - (1u64 << k)) + (1u64 << w) - 1) >> w) as usize - 1;
        SUBS + (k - SUB_BITS) * HALF + sub
    }
}

/// The inclusive upper bound (`le`) of bucket `i`, or `None` for the
/// overflow bucket.
#[must_use]
pub fn bucket_le(i: usize) -> Option<u64> {
    if i < SUBS {
        Some(i as u64 + 1)
    } else if i < BUCKETS - 1 {
        let j = i - SUBS;
        let k = SUB_BITS + j / HALF;
        let sub = (j % HALF) as u64;
        Some((1u64 << k) + ((sub + 1) << (k + 1 - SUB_BITS)))
    } else {
        None
    }
}

/// The exclusive lower bound of bucket `i` (0 for the first bucket).
#[must_use]
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i < BUCKETS {
        bucket_le(i - 1).expect("bucket below the overflow bucket has an le")
    } else {
        u64::MAX
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// A handle to a registered histogram.  Cloning is an `Arc` clone; a handle
/// from a disabled registry records nothing (one branch per call).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    pub(crate) core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// A detached no-op handle, equal in behavior to one handed out by a
    /// disabled registry.
    #[must_use]
    pub fn disabled() -> Self {
        Histogram { core: None }
    }

    /// Whether recording into this handle does anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(core) = &self.core {
            core.record(v);
        }
    }

    /// Record a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        if let Some(core) = &self.core {
            core.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// A snapshot of the current contents (all-zero for a no-op handle).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.core {
            Some(core) => core.snapshot(),
            None => HistogramSnapshot::empty(),
        }
    }
}

/// An immutable copy of a histogram's buckets, sum and count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (not cumulative).
    pub buckets: [u64; BUCKETS],
    /// Exact sum of every recorded value.
    pub sum: u64,
    /// Number of recorded values.
    pub count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with nothing recorded.
    #[must_use]
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            sum: 0,
            count: 0,
        }
    }

    /// Merge another snapshot into this one (element-wise add).  Merging is
    /// associative and commutative, so per-thread or per-shard snapshots
    /// can be combined in any order.  Additions wrap on overflow, exactly
    /// like the underlying `fetch_add` recording path.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b = b.wrapping_add(*o);
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.count = self.count.wrapping_add(other.count);
    }

    /// The merged copy of two snapshots.
    #[must_use]
    pub fn merged(mut self, other: &HistogramSnapshot) -> Self {
        self.merge(other);
        self
    }

    /// The arithmetic mean of recorded values (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) with linear interpolation inside
    /// the containing bucket, so estimates are not quantized to the
    /// factor-of-two bucket width.  Returns 0.0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let before = cumulative as f64;
            cumulative += n;
            if cumulative as f64 >= target {
                let lo = bucket_lower_bound(i) as f64;
                let hi = match bucket_le(i) {
                    Some(le) => le as f64,
                    // Overflow bucket has no upper bound; report its lower
                    // bound rather than inventing one.
                    None => return lo,
                };
                let within = ((target - before) / n as f64).clamp(0.0, 1.0);
                return lo + (hi - lo) * within;
            }
        }
        // Unreachable when count equals the bucket total, but stay safe.
        bucket_lower_bound(BUCKETS - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        // Unit region: one bucket per integer up to 32.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(32), 31);
        // First refined octave (32, 64]: sub-buckets of width 2.
        assert_eq!(bucket_index(33), 32);
        assert_eq!(bucket_index(34), 32);
        assert_eq!(bucket_index(35), 33);
        assert_eq!(bucket_index(64), 32 + 15);
        assert_eq!(bucket_index(65), 32 + 16);
        // Every bucket's le value lands in that bucket; le + 1 spills over.
        for i in 0..BUCKETS - 1 {
            let le = bucket_le(i).unwrap();
            assert_eq!(bucket_index(le), i, "le {le} must land in bucket {i}");
            if le < 1 << 63 {
                assert_eq!(bucket_index(le + 1), i + 1, "le {le} + 1 must spill");
            }
        }
        // Overflow.
        assert_eq!(bucket_index(1 << 63), BUCKETS - 2);
        assert_eq!(bucket_index((1 << 63) + 1), BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        let h = Histogram {
            core: Some(std::sync::Arc::new(HistogramCore::new())),
        };
        // 100 values spread across (4, 8].
        for _ in 0..100 {
            h.record(6);
        }
        let snap = h.snapshot();
        let p50 = snap.quantile(0.5);
        assert!(p50 > 4.0 && p50 <= 8.0, "p50 = {p50}");
        // Interpolation keeps quantiles monotone in q.
        assert!(snap.quantile(0.9) >= snap.quantile(0.1));
    }
}
