//! Null suppression (the paper's Figure 1.a).
//!
//! Each fixed-width cell is stored as its actual (unpadded) content plus a
//! small length marker.  For a `char(k)` column with actual lengths `ℓᵢ`,
//! the compressed size is `Σ (ℓᵢ + marker)` against an uncompressed size of
//! `n·k`, giving the compression fraction analysed in Section III-A of the
//! paper.

use crate::chunk::{ColumnChunk, CompressedChunk};
use crate::encoding::{ns_cell_size, read_ns_cell, write_ns_cell};
use crate::error::{CompressionError, CompressionResult};
use crate::measure::{ns_cell_size_raw, CellChunk};
use crate::scheme::CompressionScheme;
use samplecf_storage::DataType;
#[cfg(test)]
use samplecf_storage::Value;

/// Null suppression: store actual lengths instead of padded fixed widths.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSuppression;

impl NullSuppression {
    /// Exact compressed size in bytes this scheme will produce for a chunk,
    /// without materialising the compressed bytes.  Used by the analytic
    /// model tests to cross-check the codec against the formula.
    pub fn predicted_chunk_bytes(chunk: &ColumnChunk) -> CompressionResult<usize> {
        let dt = chunk.datatype();
        let mut total = 2usize; // cell count
        for v in chunk.values() {
            total += ns_cell_size(v, &dt)?;
        }
        Ok(total)
    }
}

impl CompressionScheme for NullSuppression {
    fn name(&self) -> &'static str {
        "null-suppression"
    }

    fn compress_chunk(&self, chunk: &ColumnChunk) -> CompressionResult<CompressedChunk> {
        let mut out = Vec::with_capacity(2 + chunk.logical_bytes() + chunk.len());
        out.extend_from_slice(&(chunk.len() as u16).to_be_bytes());
        let dt = chunk.datatype();
        for v in chunk.values() {
            write_ns_cell(&mut out, v, &dt)?;
        }
        Ok(CompressedChunk::new(out))
    }

    /// Closed form: count + per-cell marker-plus-payload sizes, taken from
    /// the raw cell bytes without building a single payload.
    fn measure_chunk(&self, chunk: &CellChunk<'_>) -> CompressionResult<usize> {
        let dt = chunk.datatype();
        Ok(2 + chunk
            .cells()
            .iter()
            .map(|c| ns_cell_size_raw(*c, &dt))
            .sum::<usize>())
    }

    fn decompress_chunk(
        &self,
        chunk: &CompressedChunk,
        datatype: DataType,
    ) -> CompressionResult<ColumnChunk> {
        let bytes = chunk.bytes();
        if bytes.len() < 2 {
            return Err(CompressionError::Corrupt("missing cell count".into()));
        }
        let n = u16::from_be_bytes([bytes[0], bytes[1]]) as usize;
        let mut offset = 2;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(read_ns_cell(bytes, &mut offset, &datatype)?);
        }
        if offset != bytes.len() {
            return Err(CompressionError::Corrupt(format!(
                "{} trailing bytes after decoding {n} cells",
                bytes.len() - offset
            )));
        }
        ColumnChunk::new(datatype, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn char_chunk(k: u16, strings: &[&str]) -> ColumnChunk {
        ColumnChunk::new(
            DataType::Char(k),
            strings.iter().map(|s| Value::str(*s)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_char() {
        let chunk = char_chunk(20, &["abc", "", "abcdefghij", "x"]);
        let ns = NullSuppression;
        let c = ns.compress_chunk(&chunk).unwrap();
        assert_eq!(ns.decompress_chunk(&c, DataType::Char(20)).unwrap(), chunk);
    }

    #[test]
    fn roundtrip_with_nulls_and_integers() {
        let ns = NullSuppression;
        let chunk = ColumnChunk::new(
            DataType::Int64,
            vec![Value::int(5), Value::Null, Value::int(-1_000_000)],
        )
        .unwrap();
        let c = ns.compress_chunk(&chunk).unwrap();
        assert_eq!(ns.decompress_chunk(&c, DataType::Int64).unwrap(), chunk);
    }

    #[test]
    fn compressed_size_matches_paper_formula() {
        // The paper's example: char(20) storing 'abc' costs 3 bytes + length.
        let chunk = char_chunk(20, &["abc"; 100]);
        let c = NullSuppression.compress_chunk(&chunk).unwrap();
        // 2-byte count + 100 * (1-byte marker + 3 bytes payload)
        assert_eq!(c.compressed_bytes(), 2 + 100 * 4);
        assert_eq!(
            NullSuppression::predicted_chunk_bytes(&chunk).unwrap(),
            c.compressed_bytes()
        );
    }

    #[test]
    fn shrinks_padded_data_substantially() {
        let chunk = char_chunk(40, &["ab"; 200]);
        let c = NullSuppression.compress_chunk(&chunk).unwrap();
        let cf = c.compressed_bytes() as f64 / chunk.uncompressed_bytes() as f64;
        assert!(cf < 0.15, "expected strong compression, got cf = {cf}");
    }

    #[test]
    fn full_width_values_barely_grow() {
        let chunk = char_chunk(10, &["0123456789"; 50]);
        let c = NullSuppression.compress_chunk(&chunk).unwrap();
        let cf = c.compressed_bytes() as f64 / chunk.uncompressed_bytes() as f64;
        assert!(cf > 1.0 && cf < 1.15, "cf = {cf}");
    }

    #[test]
    fn corrupt_data_rejected() {
        let ns = NullSuppression;
        assert!(ns
            .decompress_chunk(&CompressedChunk::new(vec![]), DataType::Char(8))
            .is_err());
        // count says 2 cells but stream ends after one.
        let mut bytes = vec![0u8, 2];
        bytes.extend_from_slice(&[3, b'a', b'b', b'c']);
        assert!(ns
            .decompress_chunk(&CompressedChunk::new(bytes), DataType::Char(8))
            .is_err());
        // trailing garbage.
        let chunk = char_chunk(8, &["a"]);
        let mut bytes = ns.compress_chunk(&chunk).unwrap().bytes().to_vec();
        bytes.push(0xFF);
        assert!(ns
            .decompress_chunk(&CompressedChunk::new(bytes), DataType::Char(8))
            .is_err());
    }

    #[test]
    fn empty_chunk_roundtrips() {
        let chunk = ColumnChunk::new(DataType::Char(8), vec![]).unwrap();
        let ns = NullSuppression;
        let c = ns.compress_chunk(&chunk).unwrap();
        assert_eq!(c.compressed_bytes(), 2);
        assert!(ns
            .decompress_chunk(&c, DataType::Char(8))
            .unwrap()
            .is_empty());
    }
}
