//! Minimal stand-in for the parts of `criterion 0.5` that the `samplecf`
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `criterion` to this crate by path (see the
//! `[workspace.dependencies]` entries in the root `Cargo.toml`).  It runs
//! each benchmark with a short warm-up, then a
//! fixed number of timed samples, and prints mean / min / max wall-clock
//! time per iteration (plus throughput when configured).  There is no
//! statistical outlier analysis, HTML report, or baseline comparison — the
//! numbers are honest wall-clock measurements suitable for spotting
//! order-of-magnitude differences like "SampleCF at 1% vs. exact CF".
//!
//! Benchmarks honour two environment variables:
//!
//! * `CRITERION_SAMPLES` — override the per-benchmark sample count,
//! * `CRITERION_FILTER` — only run benchmarks whose id contains the string
//!   (the first CLI argument is treated the same way, matching how
//!   `cargo bench -- <filter>` behaves).

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.parameter.is_empty() {
            f.write_str(&self.function)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function,
            parameter: String::new(),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measurement.
pub struct Bencher<'a> {
    samples: usize,
    result: &'a mut Option<SampleStats>,
}

impl Bencher<'_> {
    /// Measure `routine`, running it once per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~50ms or 3 iterations, whichever is later.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u32;
        while warmup_iters < 3 || warmup_start.elapsed() < Duration::from_millis(50) {
            std::hint::black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1000 {
                break;
            }
        }
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            times.push(start.elapsed());
        }
        *self.result = Some(SampleStats::from_times(&times));
    }
}

#[derive(Debug, Clone, Copy)]
struct SampleStats {
    mean: Duration,
    min: Duration,
    max: Duration,
}

impl SampleStats {
    fn from_times(times: &[Duration]) -> Self {
        let total: Duration = times.iter().sum();
        SampleStats {
            mean: total / times.len().max(1) as u32,
            min: times.iter().copied().min().unwrap_or_default(),
            max: times.iter().copied().max().unwrap_or_default(),
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

fn format_throughput(throughput: Throughput, per_iter: Duration) -> String {
    let secs = per_iter.as_secs_f64().max(1e-12);
    match throughput {
        Throughput::Bytes(bytes) => {
            format!("{:.1} MiB/s", bytes as f64 / secs / (1024.0 * 1024.0))
        }
        Throughput::Elements(elements) => {
            format!("{:.0} elem/s", elements as f64 / secs)
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Annotate benchmarks with work-per-iteration for throughput output.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run `routine` as a benchmark named `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        self.run(&id, |bencher| routine(bencher));
        self
    }

    /// Run `routine` as a benchmark named `id` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.run(&id, |bencher| routine(bencher, input));
        self
    }

    fn run<F: FnMut(&mut Bencher<'_>)>(&self, id: &BenchmarkId, mut routine: F) {
        let full_name = format!("{}/{id}", self.name);
        if !self.criterion.matches(&full_name) {
            return;
        }
        let samples = self
            .criterion
            .sample_override
            .unwrap_or(self.sample_size)
            .max(1);
        let mut result = None;
        let mut bencher = Bencher {
            samples,
            result: &mut result,
        };
        routine(&mut bencher);
        match result {
            Some(stats) => {
                let throughput = self
                    .throughput
                    .map(|t| format!("  [{}]", format_throughput(t, stats.mean)))
                    .unwrap_or_default();
                println!(
                    "{full_name:<60} mean {:>10}  min {:>10}  max {:>10}  ({samples} samples){throughput}",
                    format_duration(stats.mean),
                    format_duration(stats.min),
                    format_duration(stats.max),
                );
            }
            None => println!("{full_name:<60} (no measurement recorded)"),
        }
    }

    /// Finish the group (prints a trailing separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
    sample_override: Option<usize>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::var("CRITERION_FILTER").ok().or_else(|| {
            // `cargo bench -- <filter>`: first non-flag CLI argument.
            std::env::args().skip(1).find(|a| !a.starts_with('-'))
        });
        let sample_override = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok());
        Criterion {
            filter,
            sample_override,
        }
    }
}

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            criterion: self,
            sample_size: 30,
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.benchmark_group("bench").bench_function(id, routine);
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }
}

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which the workspace benches already use).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Define a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the benchmark `main` function, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut criterion = Criterion {
            filter: None,
            sample_override: Some(3),
        };
        let mut group = criterion.benchmark_group("test_group");
        group.sample_size(5).throughput(Throughput::Bytes(1024));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_non_matching() {
        let criterion = Criterion {
            filter: Some("only_this".into()),
            sample_override: None,
        };
        assert!(criterion.matches("group/only_this/5"));
        assert!(!criterion.matches("group/other/5"));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }
}
