//! **Figure B** (implied by Section III-B) — dictionary compression: the
//! ratio error of SampleCF as a function of the distinct-value ratio `d/n`,
//! for two sampling fractions and two frequency skews, against the
//! expected-value model from the theory module.

use crate::report::{fmt, Report, Table};
use samplecf_compression::GlobalDictionaryCompression;
use samplecf_core::{theory, TrialConfig, TrialRunner};
use samplecf_datagen::presets;
use samplecf_index::IndexSpec;
use samplecf_sampling::SamplerKind;

/// Run the experiment.
pub fn run(quick: bool) -> Report {
    let rows = if quick { 10_000 } else { 50_000 };
    let trials = if quick { 20 } else { 60 };
    let width: u16 = 40;
    let spec = IndexSpec::nonclustered("idx_a", ["a"]).expect("valid spec");
    let runner = TrialRunner::new(TrialConfig::new(trials).base_seed(555));
    let scheme = GlobalDictionaryCompression::default();

    let ratios = [0.0005, 0.002, 0.01, 0.05, 0.1, 0.25, 0.5, 0.8];
    let fractions = [0.01, 0.05];

    let mut report = Report::new("exp_dc_distinct_sweep");
    for &f in &fractions {
        let mut t = Table::new(
            format!("Dictionary (global model): ratio error vs d/n at f = {f} (n = {rows}, {trials} trials, uniform frequencies)"),
            &["d/n", "d", "true CF", "mean estimate", "mean ratio error", "max ratio error", "model ratio error"],
        );
        for &ratio in &ratios {
            let d = ((rows as f64 * ratio).round() as usize).max(2);
            let generated =
                presets::variable_length_table("t", rows, width, d, 4, 36, 99 + d as u64)
                    .generate()
                    .expect("generation succeeds");
            let summary = runner
                .run(
                    &generated.table,
                    &spec,
                    &scheme,
                    SamplerKind::UniformWithReplacement(f),
                )
                .expect("trials succeed");
            let model =
                theory::dc_expected_ratio_error(rows as u64, d as u64, u64::from(width), 1, f);
            t.row(&[
                format!("{ratio}"),
                d.to_string(),
                fmt(summary.true_cf()),
                fmt(summary.estimate_stats.mean),
                fmt(summary.mean_ratio_error()),
                fmt(summary.max_ratio_error()),
                fmt(model),
            ]);
        }
        t.note(
            "Expected shape: ratio error is close to 1 at both ends (very small d: the pointer \
             term dominates; very large d: the sample is almost all-distinct, like the truth) \
             and peaks at intermediate d/n, shrinking as f grows.  The analytical model column \
             tracks the measured mean because the codec's dictionary entries are null-suppressed \
             rather than full-width, so absolute values differ slightly but the shape matches.",
        );
        report.add(t);
    }

    // Frequency skew: Zipf vs uniform at fixed d/n.
    let f = 0.01;
    let d = rows / 10;
    let mut t = Table::new(
        format!("Dictionary (global model): effect of frequency skew at d/n = 0.1, f = {f}"),
        &[
            "frequency distribution",
            "true CF",
            "mean estimate",
            "mean ratio error",
            "max ratio error",
        ],
    );
    for (label, theta) in [
        ("uniform", 0.0),
        ("zipf(0.5)", 0.5),
        ("zipf(1.0)", 1.0),
        ("zipf(1.5)", 1.5),
    ] {
        let generated = if theta == 0.0 {
            presets::variable_length_table("t", rows, width, d, 4, 36, 7).generate()
        } else {
            presets::skewed_table("t", rows, width, d, theta, 7).generate()
        }
        .expect("generation succeeds");
        let summary = runner
            .run(
                &generated.table,
                &spec,
                &scheme,
                SamplerKind::UniformWithReplacement(f),
            )
            .expect("trials succeed");
        t.row(&[
            label.to_string(),
            fmt(summary.true_cf()),
            fmt(summary.estimate_stats.mean),
            fmt(summary.mean_ratio_error()),
            fmt(summary.max_ratio_error()),
        ]);
    }
    t.note(
        "Expected shape: skew helps the estimator — frequent values are seen early, so the \
         sample's distinct ratio d'/r approaches the table's d/n faster than under uniform \
         frequencies, and the ratio error drops as theta grows.",
    );
    report.add(t);
    report
}
