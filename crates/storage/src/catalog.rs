//! A minimal in-memory catalog of tables.
//!
//! The physical-design advisor and the capacity-planning example register the
//! tables they reason about here so they can be looked up by name, mirroring
//! how an automated physical design tool would enumerate candidate objects
//! from the system catalog.

use crate::error::{StorageError, StorageResult};
use crate::table::Table;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Thread-safe registry of named tables.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<BTreeMap<String, Arc<Table>>>,
}

impl Catalog {
    /// Create an empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table.
    ///
    /// # Errors
    /// Fails if a table with the same name is already registered.
    pub fn register(&self, table: Table) -> StorageResult<Arc<Table>> {
        let mut tables = self.tables.write();
        if tables.contains_key(table.name()) {
            return Err(StorageError::DuplicateTable(table.name().to_string()));
        }
        let arc = Arc::new(table);
        tables.insert(arc.name().to_string(), Arc::clone(&arc));
        Ok(arc)
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> StorageResult<Arc<Table>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Remove a table, returning it if it existed.
    pub fn drop_table(&self, name: &str) -> StorageResult<Arc<Table>> {
        self.tables
            .write()
            .remove(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Names of all registered tables, sorted.
    #[must_use]
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Number of registered tables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tables.read().len()
    }

    /// Whether the catalog is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tables.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn table(name: &str) -> Table {
        Table::new(name, Schema::single_char("a", 8))
    }

    #[test]
    fn register_and_lookup() {
        let cat = Catalog::new();
        assert!(cat.is_empty());
        cat.register(table("orders")).unwrap();
        cat.register(table("lineitem")).unwrap();
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.get("orders").unwrap().name(), "orders");
        assert!(cat.get("missing").is_err());
        assert_eq!(cat.table_names(), vec!["lineitem", "orders"]);
    }

    #[test]
    fn duplicate_registration_fails() {
        let cat = Catalog::new();
        cat.register(table("t")).unwrap();
        assert!(matches!(
            cat.register(table("t")),
            Err(StorageError::DuplicateTable(_))
        ));
    }

    #[test]
    fn drop_removes_table() {
        let cat = Catalog::new();
        cat.register(table("t")).unwrap();
        assert!(cat.drop_table("t").is_ok());
        assert!(cat.get("t").is_err());
        assert!(cat.drop_table("t").is_err());
    }

    #[test]
    fn catalog_is_shareable_across_threads() {
        let cat = Arc::new(Catalog::new());
        cat.register(table("t")).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cat = Arc::clone(&cat);
                std::thread::spawn(move || cat.get("t").unwrap().name().to_string())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), "t");
        }
    }
}
