//! Distinct-value estimators.
//!
//! The paper relates dictionary-compression estimation to distinct-value
//! estimation, which is provably hard from uniform samples (its reference
//! \[1\], Charikar et al., PODS 2000).  SampleCF sidesteps the problem by
//! returning the *sample's own* compression fraction instead of scaling up a
//! distinct-value estimate.  For the baseline experiment (`exp_dv_baselines`)
//! we also implement the classical scale-up estimators so the two approaches
//! can be compared: plug an estimated `d̂` into the analytic
//! `CF_DC = (n·p + d̂·k)/(n·k)` formula and see how it fares against SampleCF.

use samplecf_storage::Value;
use std::collections::HashMap;

/// The frequency histogram of a sample: `f_j` = number of distinct values
/// that occur exactly `j` times in the sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequencyHistogram {
    counts: HashMap<usize, usize>,
    sample_size: usize,
    distinct_in_sample: usize,
}

impl FrequencyHistogram {
    /// Build the histogram of a sample of values (NULLs are counted as a
    /// single distinct value, matching how dictionaries treat them).
    #[must_use]
    pub fn from_values(values: &[Value]) -> Self {
        let mut occurrences: HashMap<&Value, usize> = HashMap::new();
        for v in values {
            *occurrences.entry(v).or_insert(0) += 1;
        }
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for &c in occurrences.values() {
            *counts.entry(c).or_insert(0) += 1;
        }
        FrequencyHistogram {
            counts,
            sample_size: values.len(),
            distinct_in_sample: occurrences.len(),
        }
    }

    /// `f_j`: how many distinct values occur exactly `j` times in the sample.
    #[must_use]
    pub fn f(&self, j: usize) -> usize {
        self.counts.get(&j).copied().unwrap_or(0)
    }

    /// Number of rows in the sample (`r`).
    #[must_use]
    pub fn sample_size(&self) -> usize {
        self.sample_size
    }

    /// Number of distinct values in the sample (`d'`).
    #[must_use]
    pub fn distinct_in_sample(&self) -> usize {
        self.distinct_in_sample
    }

    /// Largest multiplicity observed.
    #[must_use]
    pub fn max_multiplicity(&self) -> usize {
        self.counts.keys().copied().max().unwrap_or(0)
    }
}

/// An estimator of the number of distinct values in a table of `n` rows, from
/// a uniform sample described by its frequency histogram.
pub trait DistinctEstimator: Send + Sync {
    /// Short stable name.
    fn name(&self) -> &'static str;

    /// Estimate the number of distinct values in the full table.
    fn estimate(&self, hist: &FrequencyHistogram, table_rows: usize) -> f64;
}

impl std::fmt::Debug for dyn DistinctEstimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DistinctEstimator({})", self.name())
    }
}

fn clamp_estimate(d_hat: f64, hist: &FrequencyHistogram, table_rows: usize) -> f64 {
    d_hat
        .max(hist.distinct_in_sample() as f64)
        .min(table_rows as f64)
        .max(if table_rows > 0 { 1.0 } else { 0.0 })
}

/// The naive scale-up estimator `d̂ = d'·(n/r)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveScaleUp;

impl DistinctEstimator for NaiveScaleUp {
    fn name(&self) -> &'static str {
        "naive-scale-up"
    }

    fn estimate(&self, hist: &FrequencyHistogram, table_rows: usize) -> f64 {
        if hist.sample_size() == 0 {
            return 0.0;
        }
        let scale = table_rows as f64 / hist.sample_size() as f64;
        clamp_estimate(hist.distinct_in_sample() as f64 * scale, hist, table_rows)
    }
}

/// The sample's own distinct count with no scaling, `d̂ = d'` — always an
/// underestimate, included as the other extreme of the baseline spectrum.
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleDistinct;

impl DistinctEstimator for SampleDistinct {
    fn name(&self) -> &'static str {
        "sample-distinct"
    }

    fn estimate(&self, hist: &FrequencyHistogram, table_rows: usize) -> f64 {
        clamp_estimate(hist.distinct_in_sample() as f64, hist, table_rows)
    }
}

/// Chao's 1984 estimator `d̂ = d' + f₁² / (2·f₂)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Chao84;

impl DistinctEstimator for Chao84 {
    fn name(&self) -> &'static str {
        "chao84"
    }

    fn estimate(&self, hist: &FrequencyHistogram, table_rows: usize) -> f64 {
        let f1 = hist.f(1) as f64;
        let f2 = hist.f(2) as f64;
        let d_prime = hist.distinct_in_sample() as f64;
        let d_hat = if f2 > 0.0 {
            d_prime + f1 * f1 / (2.0 * f2)
        } else {
            // Standard bias-corrected fallback when no value occurs twice.
            d_prime + f1 * (f1 - 1.0) / 2.0
        };
        clamp_estimate(d_hat, hist, table_rows)
    }
}

/// The Guaranteed-Error Estimator of Charikar et al. (PODS 2000):
/// `d̂ = √(n/r)·f₁ + Σ_{j≥2} f_j`.
#[derive(Debug, Clone, Copy, Default)]
pub struct GuaranteedErrorEstimator;

impl DistinctEstimator for GuaranteedErrorEstimator {
    fn name(&self) -> &'static str {
        "gee"
    }

    fn estimate(&self, hist: &FrequencyHistogram, table_rows: usize) -> f64 {
        if hist.sample_size() == 0 {
            return 0.0;
        }
        let scale = (table_rows as f64 / hist.sample_size() as f64).sqrt();
        let higher: usize = hist.distinct_in_sample() - hist.f(1);
        clamp_estimate(scale * hist.f(1) as f64 + higher as f64, hist, table_rows)
    }
}

/// Shlosser's estimator, designed for Bernoulli samples with rate `q = r/n`:
/// `d̂ = d' + f₁ · Σ (1−q)^j f_j / Σ j·q·(1−q)^{j−1} f_j`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Shlosser;

impl DistinctEstimator for Shlosser {
    fn name(&self) -> &'static str {
        "shlosser"
    }

    fn estimate(&self, hist: &FrequencyHistogram, table_rows: usize) -> f64 {
        if hist.sample_size() == 0 || table_rows == 0 {
            return 0.0;
        }
        let q = (hist.sample_size() as f64 / table_rows as f64).min(1.0);
        if q >= 1.0 {
            return hist.distinct_in_sample() as f64;
        }
        let mut numerator = 0.0;
        let mut denominator = 0.0;
        for j in 1..=hist.max_multiplicity() {
            let fj = hist.f(j) as f64;
            if fj == 0.0 {
                continue;
            }
            numerator += (1.0 - q).powi(j as i32) * fj;
            denominator += j as f64 * q * (1.0 - q).powi(j as i32 - 1) * fj;
        }
        let d_prime = hist.distinct_in_sample() as f64;
        let d_hat = if denominator > 0.0 {
            d_prime + hist.f(1) as f64 * numerator / denominator
        } else {
            d_prime
        };
        clamp_estimate(d_hat, hist, table_rows)
    }
}

/// All baseline estimators, for sweeping in experiments.
#[must_use]
pub fn all_estimators() -> Vec<Box<dyn DistinctEstimator>> {
    vec![
        Box::new(SampleDistinct),
        Box::new(NaiveScaleUp),
        Box::new(Chao84),
        Box::new(GuaranteedErrorEstimator),
        Box::new(Shlosser),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_with(counts: &[(i64, usize)]) -> Vec<Value> {
        let mut out = Vec::new();
        for &(v, c) in counts {
            out.extend(std::iter::repeat_n(Value::Int(v), c));
        }
        out
    }

    #[test]
    fn histogram_counts_multiplicities() {
        let values = sample_with(&[(1, 1), (2, 1), (3, 2), (4, 5)]);
        let h = FrequencyHistogram::from_values(&values);
        assert_eq!(h.sample_size(), 9);
        assert_eq!(h.distinct_in_sample(), 4);
        assert_eq!(h.f(1), 2);
        assert_eq!(h.f(2), 1);
        assert_eq!(h.f(5), 1);
        assert_eq!(h.f(3), 0);
        assert_eq!(h.max_multiplicity(), 5);
    }

    #[test]
    fn histogram_of_empty_sample() {
        let h = FrequencyHistogram::from_values(&[]);
        assert_eq!(h.sample_size(), 0);
        assert_eq!(h.distinct_in_sample(), 0);
        assert_eq!(h.max_multiplicity(), 0);
    }

    #[test]
    fn estimators_are_exact_when_the_sample_is_the_table() {
        // Sample = full table of 100 rows with 10 distinct values.
        let values = sample_with(&(0..10).map(|i| (i, 10)).collect::<Vec<_>>());
        let h = FrequencyHistogram::from_values(&values);
        for est in all_estimators() {
            let d_hat = est.estimate(&h, 100);
            assert!(
                (d_hat - 10.0).abs() < 1e-9,
                "{} estimated {d_hat} for a fully observed table",
                est.name()
            );
        }
    }

    #[test]
    fn estimates_are_clamped_to_valid_range() {
        let values = sample_with(&[(1, 1), (2, 1), (3, 1)]);
        let h = FrequencyHistogram::from_values(&values);
        for est in all_estimators() {
            let d_hat = est.estimate(&h, 1000);
            assert!(d_hat >= 3.0, "{}: {d_hat}", est.name());
            assert!(d_hat <= 1000.0, "{}: {d_hat}", est.name());
        }
    }

    #[test]
    fn naive_scale_up_overestimates_low_cardinality_columns() {
        // 2 distinct values observed in a 1% sample of 10_000 rows.
        let values = sample_with(&[(1, 60), (2, 40)]);
        let h = FrequencyHistogram::from_values(&values);
        let naive = NaiveScaleUp.estimate(&h, 10_000);
        assert!((naive - 200.0).abs() < 1e-9);
        // GEE and Chao84 stay close to the sample's distinct count because no
        // singletons exist.
        assert!(GuaranteedErrorEstimator.estimate(&h, 10_000) < 10.0);
        assert!(Chao84.estimate(&h, 10_000) < 10.0);
    }

    #[test]
    fn gee_scales_singletons_by_sqrt_of_inverse_fraction() {
        // 100 singletons in a sample of 100 rows from a 10_000-row table.
        let values = sample_with(&(0..100).map(|i| (i, 1)).collect::<Vec<_>>());
        let h = FrequencyHistogram::from_values(&values);
        let gee = GuaranteedErrorEstimator.estimate(&h, 10_000);
        assert!((gee - 1000.0).abs() < 1e-9, "gee = {gee}");
    }

    #[test]
    fn shlosser_exceeds_sample_distinct_when_singletons_exist() {
        let mut values = sample_with(&(0..50).map(|i| (i, 1)).collect::<Vec<_>>());
        values.extend(sample_with(&[(1000, 25), (1001, 25)]));
        let h = FrequencyHistogram::from_values(&values);
        let s = Shlosser.estimate(&h, 10_000);
        assert!(s > h.distinct_in_sample() as f64);
    }

    #[test]
    fn nulls_count_as_one_distinct_value() {
        let values = vec![Value::Null, Value::Null, Value::Int(1)];
        let h = FrequencyHistogram::from_values(&values);
        assert_eq!(h.distinct_in_sample(), 2);
        assert_eq!(h.f(2), 1);
    }
}
