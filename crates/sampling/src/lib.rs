//! # samplecf-sampling
//!
//! Sampling procedures for the SampleCF reproduction.
//!
//! The paper's estimator assumes **uniform row sampling with replacement**
//! ([`UniformWithReplacement`]); commercial systems typically use
//! **block-level sampling** ([`BlockSampler`]), which the paper leaves to
//! future work.  Both — plus without-replacement, Bernoulli, systematic and
//! reservoir variants — are provided behind the [`RowSampler`] trait so the
//! estimator and the benchmark harness can swap them freely.
//!
//! Samplers draw through the
//! [`TableSource`](samplecf_storage::TableSource) abstraction, so they run
//! unchanged over in-memory tables and disk-resident
//! [`DiskTable`](samplecf_storage::DiskTable)s — where a block sample
//! physically reads only the selected pages.  Wrap any source in
//! [`CountingSource`] to measure exactly how many pages a sampling
//! procedure touches, and draw through [`MaterializedSample`] to pay that
//! I/O once and share the sample across many consumers (the advisor's
//! batch-estimation trick).
//!
//! For **progressive estimation**, the uniform-with-replacement, block,
//! reservoir and stratified samplers also come as [`SampleStream`]s: prefix-stable draws
//! that arrive in geometrically growing batches (see [`BatchSchedule`]), so
//! a consumer can measure after every batch and stop as soon as its error
//! target is met — and a [`MaterializedSample`] can be *deepened* in place
//! via [`MaterializedSample::extend_from_stream`] instead of redrawn.
//!
//! ## Quickstart
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use samplecf_sampling::SamplerKind;
//! use samplecf_storage::{Column, DataType, Row, Schema, TableBuilder, Value};
//!
//! let schema = Schema::new(vec![Column::new("a", DataType::Int64)])?;
//! let rows: Vec<Row> = (0..1_000).map(|i| Row::new(vec![Value::int(i)])).collect();
//! let table = TableBuilder::new("t", schema).build_with_rows(rows)?;
//!
//! // Draw a 10% uniform-with-replacement sample, as the paper's estimator does.
//! let sampler = SamplerKind::UniformWithReplacement(0.1).build()?;
//! let mut rng = StdRng::seed_from_u64(7);
//! let sample = sampler.sample(&table, &mut rng)?;
//!
//! assert_eq!(sample.len(), 100);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod block;
pub mod error;
pub mod io;
pub mod kind;
pub mod materialize;
pub mod reservoir;
pub mod sampler;
pub mod strata;
pub mod stratified;
pub mod stream;
pub mod uniform;

pub use block::BlockSampler;
pub use error::{SamplingError, SamplingResult};
pub use io::CountingSource;
pub use kind::{Allocation, SamplerKind, StrataMode};
pub use materialize::MaterializedSample;
pub use reservoir::ReservoirSampler;
pub use sampler::{target_page_count, target_size, validate_fraction, RowSampler, SampledRow};
pub use strata::Strata;
pub use stratified::{StratifiedSampler, StratifiedStream};
pub use stream::{
    fetch_positions_coalesced, BatchSchedule, BlockStream, IncrementalFisherYates, PageCache,
    ReservoirStream, SampleStream, UniformWrStream,
};
pub use uniform::{
    BernoulliSampler, SystematicSampler, UniformWithReplacement, UniformWithoutReplacement,
};
