//! Markdown report writing for the experiment binaries.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A simple markdown table builder.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a free-text note rendered under the table.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render the table as markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        for note in &self.notes {
            let _ = writeln!(out, "\n> {note}");
        }
        out
    }
}

/// A report: a collection of tables belonging to one experiment, printed to
/// stdout and persisted under `results/<experiment>.md`.
#[derive(Debug)]
pub struct Report {
    experiment: String,
    tables: Vec<Table>,
    output_dir: PathBuf,
}

impl Report {
    /// Create a report for the named experiment, writing into `results/` at
    /// the workspace root (or `$SAMPLECF_RESULTS_DIR` if set).
    pub fn new(experiment: impl Into<String>) -> Self {
        let output_dir = std::env::var("SAMPLECF_RESULTS_DIR")
            .map_or_else(|_| PathBuf::from("results"), PathBuf::from);
        Report {
            experiment: experiment.into(),
            tables: Vec::new(),
            output_dir,
        }
    }

    /// Use a custom output directory (mainly for tests).
    #[must_use]
    pub fn with_output_dir(mut self, dir: impl AsRef<Path>) -> Self {
        self.output_dir = dir.as_ref().to_path_buf();
        self
    }

    /// Add a finished table.
    pub fn add(&mut self, table: Table) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// The markdown for the whole report.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## Experiment `{}`\n\n", self.experiment);
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        out
    }

    /// Print the report to stdout and persist it to
    /// `<output_dir>/<experiment>.md`.  Returns the path written.
    pub fn finish(&self) -> io::Result<PathBuf> {
        let markdown = self.to_markdown();
        println!("{markdown}");
        fs::create_dir_all(&self.output_dir)?;
        let path = self.output_dir.join(format!("{}.md", self.experiment));
        fs::write(&path, markdown)?;
        Ok(path)
    }
}

/// Format a float with a sensible number of digits for report cells.
#[must_use]
pub fn fmt(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() >= 1000.0 {
        format!("{value:.0}")
    } else if value.abs() >= 1.0 {
        format!("{value:.3}")
    } else {
        format!("{value:.5}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["x".into(), "y".into()]);
        t.note("a note");
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| x | y |"));
        assert!(md.contains("> a note"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn mismatched_rows_panic() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn report_writes_to_disk() {
        let dir = std::env::temp_dir().join("samplecf_bench_report_test");
        let mut report = Report::new("unit_test_report").with_output_dir(&dir);
        let mut t = Table::new("T", &["col"]);
        t.row(&["v".into()]);
        report.add(t);
        let path = report.finish().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("## Experiment `unit_test_report`"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.12345678), "0.12346");
        assert_eq!(fmt(1.23456), "1.235");
        assert_eq!(fmt(123456.7), "123457");
    }
}
