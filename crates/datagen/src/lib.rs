//! # samplecf-datagen
//!
//! Seeded synthetic data generation for the SampleCF reproduction.
//!
//! The paper's analysis is parameterised by a handful of data properties: the
//! number of rows `n`, the number of distinct values `d`, the column width
//! `k`, the distribution of null-suppressed value lengths `ℓᵢ`, and the skew
//! of value frequencies.  This crate exposes exactly those knobs
//! ([`ColumnSpec`], [`LengthDistribution`], [`FrequencyDistribution`],
//! [`TableSpec`]) plus ready-made presets for the regimes the theorems
//! distinguish ([`presets`]).  Generation is deterministic given a seed, and
//! every generated table comes with its ground-truth statistics
//! ([`ColumnStats`]) so experiments can compare estimates against exact
//! values without rescanning.
//!
//! ## Quickstart
//!
//! ```
//! use samplecf_datagen::presets;
//!
//! // 1 000 rows, one char(20) column, 50 distinct 8-byte values, seed 42.
//! let generated = presets::single_char_table("demo", 1_000, 20, 50, 8, 42)
//!     .generate()?;
//!
//! assert_eq!(generated.table.num_rows(), 1_000);
//! // Ground truth comes with the table: exactly 50 distinct values, and
//! // every value stores 8 of its 20 padded bytes.
//! let stats = &generated.column_stats[0];
//! assert_eq!(stats.distinct_values, 50);
//! assert_eq!(stats.sum_logical_len, 8 * 1_000);
//! # Ok::<(), samplecf_datagen::DatagenError>(())
//! ```

pub mod column;
pub mod distribution;
pub mod error;
pub mod pool;
pub mod presets;
pub mod table_gen;

pub use column::{ColumnGenerator, ColumnSpec};
pub use distribution::{FrequencyDistribution, FrequencySampler, LengthDistribution};
pub use error::{DatagenError, DatagenResult};
pub use pool::ValuePool;
pub use table_gen::{ColumnStats, GeneratedTable, RowLayout, TableSpec};
