//! Rows and the uncompressed row/cell codec.
//!
//! The codec defines the *uncompressed* byte representation whose size the
//! compression fraction's denominator counts: every cell occupies exactly its
//! declared width ([`DataType::uncompressed_width`]), with character values
//! space-padded as in SQL `CHAR(k)`.  A small null bitmap precedes the cells
//! in the heap record format.
//!
//! Cell encodings are *order preserving*: comparing the encoded bytes of two
//! cells of the same type with `memcmp` yields the same order as comparing
//! the [`Value`]s.  This lets the index bulk loader sort raw key bytes.

use crate::datatype::DataType;
use crate::error::{StorageError, StorageResult};
use crate::schema::Schema;
use crate::value::Value;
use std::fmt;

/// A row of cell values.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Create a row from values.
    #[must_use]
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// The cell values in column order.
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value at column index `idx`.
    #[must_use]
    pub fn value(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Number of cells.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Project the row onto the given column indexes (in that order).
    #[must_use]
    pub fn project(&self, indexes: &[usize]) -> Row {
        Row::new(indexes.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Consume the row, returning its values.
    #[must_use]
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

/// Pad byte used for `CHAR(k)` values, matching SQL space padding.
pub const CHAR_PAD: u8 = b' ';

/// Encode a single non-null cell into its fixed-width, order-preserving
/// uncompressed representation and append it to `out`.
///
/// # Errors
/// Returns an error if the value does not conform to the data type.
pub fn encode_cell(value: &Value, dt: &DataType, out: &mut Vec<u8>) -> StorageResult<()> {
    value.conforms_to(dt, "<cell>")?;
    match (value, dt) {
        (Value::Null, _) => {
            // NULL cells are materialised as all-pad bytes; the null bitmap in
            // the record header is authoritative.
            out.extend(std::iter::repeat_n(0u8, dt.uncompressed_width()));
        }
        (Value::Str(s), DataType::Char(k)) | (Value::Str(s), DataType::VarChar(k)) => {
            out.extend_from_slice(s.as_bytes());
            out.extend(std::iter::repeat_n(CHAR_PAD, *k as usize - s.len()));
        }
        (Value::Int(i), DataType::Int32) => {
            // Flip the sign bit so that big-endian byte order matches numeric order.
            let u = (*i as i32 as u32) ^ (1 << 31);
            out.extend_from_slice(&u.to_be_bytes());
        }
        (Value::Int(i), DataType::Int64) => {
            let u = (*i as u64) ^ (1 << 63);
            out.extend_from_slice(&u.to_be_bytes());
        }
        (Value::Bool(b), DataType::Bool) => out.push(u8::from(*b)),
        (v, dt) => {
            return Err(StorageError::TypeMismatch {
                column: "<cell>".to_string(),
                expected: dt.sql_name(),
                found: v.kind_name().to_string(),
            })
        }
    }
    Ok(())
}

/// Decode a single cell from its fixed-width representation.
///
/// Character values have trailing pad bytes trimmed (SQL `CHAR` semantics:
/// trailing spaces are not significant).
pub fn decode_cell(bytes: &[u8], dt: &DataType) -> StorageResult<Value> {
    let w = dt.uncompressed_width();
    if bytes.len() < w {
        return Err(StorageError::Decode(format!(
            "cell truncated: need {w} bytes, have {}",
            bytes.len()
        )));
    }
    let bytes = &bytes[..w];
    match dt {
        DataType::Char(_) | DataType::VarChar(_) => {
            let end = bytes
                .iter()
                .rposition(|&b| b != CHAR_PAD)
                .map_or(0, |p| p + 1);
            let s = std::str::from_utf8(&bytes[..end])
                .map_err(|e| StorageError::Decode(format!("invalid utf8 in char cell: {e}")))?;
            Ok(Value::Str(s.to_string()))
        }
        DataType::Int32 => {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(bytes);
            let u = u32::from_be_bytes(buf) ^ (1 << 31);
            Ok(Value::Int(i64::from(u as i32)))
        }
        DataType::Int64 => {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(bytes);
            let u = u64::from_be_bytes(buf) ^ (1 << 63);
            Ok(Value::Int(u as i64))
        }
        DataType::Bool => Ok(Value::Bool(bytes[0] != 0)),
    }
}

/// Codec translating [`Row`]s to and from the uncompressed heap record format.
///
/// Record layout: `[null bitmap: ceil(arity/8) bytes][cell 0][cell 1]...`
/// where every cell occupies its declared uncompressed width.
#[derive(Debug, Clone)]
pub struct RowCodec {
    schema: Schema,
    /// Byte offset of each cell within the record (after the null bitmap),
    /// precomputed so borrowed cell access is O(1).
    cell_offsets: Vec<usize>,
}

impl RowCodec {
    /// Create a codec for the given schema.
    #[must_use]
    pub fn new(schema: Schema) -> Self {
        let bitmap = schema.arity().div_ceil(8);
        let mut cell_offsets = Vec::with_capacity(schema.arity());
        let mut offset = bitmap;
        for c in schema.columns() {
            cell_offsets.push(offset);
            offset += c.datatype.uncompressed_width();
        }
        RowCodec {
            schema,
            cell_offsets,
        }
    }

    /// Byte offset of column `idx`'s cell within an encoded record.
    #[must_use]
    pub fn cell_offset(&self, idx: usize) -> usize {
        self.cell_offsets[idx]
    }

    /// The schema this codec encodes for.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Size in bytes of the null bitmap for this schema.
    #[must_use]
    pub fn bitmap_bytes(&self) -> usize {
        self.schema.arity().div_ceil(8)
    }

    /// Total encoded record size in bytes (fixed for a given schema).
    #[must_use]
    pub fn record_size(&self) -> usize {
        self.bitmap_bytes() + self.schema.row_width()
    }

    /// Encode a row into record bytes, validating it against the schema.
    pub fn encode(&self, row: &Row) -> StorageResult<Vec<u8>> {
        self.schema.validate_row(row.values())?;
        let mut out = Vec::with_capacity(self.record_size());
        let mut bitmap = vec![0u8; self.bitmap_bytes()];
        for (i, v) in row.values().iter().enumerate() {
            if v.is_null() {
                bitmap[i / 8] |= 1 << (i % 8);
            }
        }
        out.extend_from_slice(&bitmap);
        for (v, c) in row.values().iter().zip(self.schema.columns()) {
            encode_cell(v, &c.datatype, &mut out)?;
        }
        debug_assert_eq!(out.len(), self.record_size());
        Ok(out)
    }

    /// Decode record bytes back into a row.
    pub fn decode(&self, bytes: &[u8]) -> StorageResult<Row> {
        if bytes.len() != self.record_size() {
            return Err(StorageError::Decode(format!(
                "record length {} does not match schema record size {}",
                bytes.len(),
                self.record_size()
            )));
        }
        let bitmap = &bytes[..self.bitmap_bytes()];
        let mut offset = self.bitmap_bytes();
        let mut values = Vec::with_capacity(self.schema.arity());
        for (i, c) in self.schema.columns().iter().enumerate() {
            let w = c.datatype.uncompressed_width();
            if bitmap[i / 8] & (1 << (i % 8)) != 0 {
                values.push(Value::Null);
            } else {
                values.push(decode_cell(&bytes[offset..offset + w], &c.datatype)?);
            }
            offset += w;
        }
        Ok(Row::new(values))
    }

    /// Encode only the cells of the given column indexes (no null bitmap),
    /// producing the order-preserving key bytes used by indexes.
    pub fn encode_key(&self, row: &Row, column_indexes: &[usize]) -> StorageResult<Vec<u8>> {
        let mut out = Vec::new();
        for &i in column_indexes {
            let c = self.schema.column_at(i);
            encode_cell(row.value(i), &c.datatype, &mut out)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("name", DataType::Char(12)),
            Column::nullable("qty", DataType::Int32),
            Column::new("id", DataType::Int64),
            Column::new("flag", DataType::Bool),
        ])
        .unwrap()
    }

    #[test]
    fn record_size_is_fixed() {
        let codec = RowCodec::new(schema());
        assert_eq!(codec.bitmap_bytes(), 1);
        assert_eq!(codec.record_size(), 1 + 12 + 4 + 8 + 1);
    }

    #[test]
    fn roundtrip_plain_row() {
        let codec = RowCodec::new(schema());
        let row = Row::new(vec![
            Value::str("widget"),
            Value::int(-5),
            Value::int(1 << 40),
            Value::Bool(true),
        ]);
        let bytes = codec.encode(&row).unwrap();
        assert_eq!(bytes.len(), codec.record_size());
        assert_eq!(codec.decode(&bytes).unwrap(), row);
    }

    #[test]
    fn roundtrip_with_null() {
        let codec = RowCodec::new(schema());
        let row = Row::new(vec![
            Value::str(""),
            Value::Null,
            Value::int(0),
            Value::Bool(false),
        ]);
        let bytes = codec.encode(&row).unwrap();
        assert_eq!(codec.decode(&bytes).unwrap(), row);
    }

    #[test]
    fn encode_rejects_invalid_rows() {
        let codec = RowCodec::new(schema());
        // too wide
        assert!(codec
            .encode(&Row::new(vec![
                Value::str("longer than twelve"),
                Value::int(1),
                Value::int(1),
                Value::Bool(false)
            ]))
            .is_err());
        // wrong arity
        assert!(codec.encode(&Row::new(vec![Value::str("x")])).is_err());
        // null in non-nullable
        assert!(codec
            .encode(&Row::new(vec![
                Value::Null,
                Value::int(1),
                Value::int(1),
                Value::Bool(false)
            ]))
            .is_err());
    }

    #[test]
    fn decode_rejects_bad_length() {
        let codec = RowCodec::new(schema());
        assert!(codec.decode(&[0u8; 3]).is_err());
    }

    #[test]
    fn int_encoding_preserves_order() {
        for (a, b) in [(-10i64, -2), (-2, 0), (0, 5), (5, 1 << 20)] {
            let mut ea = Vec::new();
            let mut eb = Vec::new();
            encode_cell(&Value::int(a), &DataType::Int64, &mut ea).unwrap();
            encode_cell(&Value::int(b), &DataType::Int64, &mut eb).unwrap();
            assert!(ea < eb, "{a} should encode below {b}");

            let mut ea = Vec::new();
            let mut eb = Vec::new();
            encode_cell(&Value::int(a), &DataType::Int32, &mut ea).unwrap();
            encode_cell(&Value::int(b), &DataType::Int32, &mut eb).unwrap();
            assert!(ea < eb, "{a} should encode below {b} as int32");
        }
    }

    #[test]
    fn char_encoding_preserves_order_for_padded_values() {
        let dt = DataType::Char(8);
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        encode_cell(&Value::str("abc"), &dt, &mut ea).unwrap();
        encode_cell(&Value::str("abd"), &dt, &mut eb).unwrap();
        assert!(ea < eb);
    }

    #[test]
    fn decode_cell_trims_padding() {
        let dt = DataType::Char(6);
        let mut bytes = Vec::new();
        encode_cell(&Value::str("ab"), &dt, &mut bytes).unwrap();
        assert_eq!(bytes.len(), 6);
        assert_eq!(decode_cell(&bytes, &dt).unwrap(), Value::str("ab"));
    }

    #[test]
    fn key_encoding_uses_selected_columns_only() {
        let codec = RowCodec::new(schema());
        let row = Row::new(vec![
            Value::str("abc"),
            Value::int(7),
            Value::int(9),
            Value::Bool(true),
        ]);
        let key = codec.encode_key(&row, &[2, 0]).unwrap();
        assert_eq!(key.len(), 8 + 12);
    }

    #[test]
    fn row_projection_and_accessors() {
        let row = Row::new(vec![Value::int(1), Value::str("x"), Value::int(3)]);
        assert_eq!(row.arity(), 3);
        assert_eq!(row.value(1), &Value::str("x"));
        let p = row.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::int(3), Value::int(1)]);
        assert_eq!(row.to_string(), "(1, 'x', 3)");
    }
}
