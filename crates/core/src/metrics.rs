//! Error metrics and summary statistics.
//!
//! The paper evaluates estimators by their **ratio error**
//! `max(CF'/CF, CF/CF')` (Section II-C) and by bias/variance (Theorem 1).
//! This module provides those metrics plus the summary statistics the trial
//! runner reports.

/// The ratio error `max(est/truth, truth/est)` used throughout the paper.
///
/// A perfect estimate has ratio error 1.  Degenerate inputs (zero or negative
/// values) return `f64::INFINITY`.
#[must_use]
pub fn ratio_error(estimate: f64, truth: f64) -> f64 {
    if estimate <= 0.0 || truth <= 0.0 || !estimate.is_finite() || !truth.is_finite() {
        return f64::INFINITY;
    }
    (estimate / truth).max(truth / estimate)
}

/// Signed relative error `(est - truth) / truth`.
#[must_use]
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        return f64::INFINITY;
    }
    (estimate - truth) / truth
}

/// Absolute error `|est - truth|`.
#[must_use]
pub fn absolute_error(estimate: f64, truth: f64) -> f64 {
    (estimate - truth).abs()
}

/// Summary statistics over a set of observations (estimates from repeated
/// trials, per-trial ratio errors, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryStats {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 in the denominator).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl SummaryStats {
    /// Compute summary statistics.  Returns `None` for an empty slice.
    #[must_use]
    pub fn from_values(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in observations"));
        Some(SummaryStats {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: percentile_of_sorted(&sorted, 0.5),
            p95: percentile_of_sorted(&sorted, 0.95),
        })
    }

    /// Population variance of the observations (n in the denominator) — the
    /// quantity Theorem 1 bounds.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.std_dev.powi(2) * (self.count.saturating_sub(1)) as f64 / self.count as f64
    }
}

/// Delete-one-group jackknife variance of an estimator computed from
/// unequal-size groups (Busing, Meijer & van der Leeden's delete-m_j
/// jackknife).
///
/// `theta_hat` is the estimate over all `n` observations; `leave_one_out[b]`
/// is the same estimator recomputed with group `b` (of `group_sizes[b]`
/// observations) removed.  With `h_b = n / m_b`, the pseudo-values are
/// `θ̃_b = h_b·θ̂ − (h_b − 1)·θ̂₍₋b₎` and the variance estimate is
///
/// ```text
/// v = (1/k) · Σ_b (θ̃_b − θ̄)² / (h_b − 1),    θ̄ = (1/k) Σ_b θ̃_b
/// ```
///
/// which reduces to the classical delete-one jackknife when all groups are
/// the same size.  This is how the progressive estimator turns its
/// geometric sample batches into an honest variance for the CF estimate.
/// Returns `None` with fewer than two groups (no variance information) or
/// mismatched inputs.
#[must_use]
pub fn grouped_jackknife_variance(
    theta_hat: f64,
    leave_one_out: &[f64],
    group_sizes: &[usize],
) -> Option<f64> {
    let k = leave_one_out.len();
    if k < 2 || group_sizes.len() != k || group_sizes.contains(&0) {
        return None;
    }
    let n: usize = group_sizes.iter().sum();
    let h: Vec<f64> = group_sizes.iter().map(|&m| n as f64 / m as f64).collect();
    if h.iter().any(|&hb| hb <= 1.0) {
        // A group holding every observation leaves nothing to delete.
        return None;
    }
    let pseudo: Vec<f64> = leave_one_out
        .iter()
        .zip(&h)
        .map(|(&loo, &hb)| hb * theta_hat - (hb - 1.0) * loo)
        .collect();
    let pseudo_mean = pseudo.iter().sum::<f64>() / k as f64;
    let v = pseudo
        .iter()
        .zip(&h)
        .map(|(&p, &hb)| (p - pseudo_mean).powi(2) / (hb - 1.0))
        .sum::<f64>()
        / k as f64;
    Some(v)
}

fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_error_is_symmetric_and_at_least_one() {
        assert!((ratio_error(0.2, 0.2) - 1.0).abs() < 1e-12);
        assert!((ratio_error(0.4, 0.2) - 2.0).abs() < 1e-12);
        assert!((ratio_error(0.2, 0.4) - 2.0).abs() < 1e-12);
        assert_eq!(ratio_error(0.0, 0.5), f64::INFINITY);
        assert_eq!(ratio_error(0.5, 0.0), f64::INFINITY);
        assert_eq!(ratio_error(f64::NAN, 0.5), f64::INFINITY);
    }

    #[test]
    fn relative_and_absolute_errors() {
        assert!((relative_error(0.25, 0.2) - 0.25).abs() < 1e-12);
        assert!((relative_error(0.15, 0.2) + 0.25).abs() < 1e-12);
        assert_eq!(relative_error(0.1, 0.0), f64::INFINITY);
        assert!((absolute_error(0.25, 0.2) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn summary_stats_basics() {
        let s = SummaryStats::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.std_dev - 1.5811388).abs() < 1e-6);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert!(s.p95 >= 4.0 && s.p95 <= 5.0);
        assert!((s.population_variance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn grouped_jackknife_matches_the_classical_formula_for_equal_groups() {
        // Estimator: the mean of 3 equal-size groups of observations.
        let groups: Vec<Vec<f64>> = vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 6.0],
            vec![1.5, 2.5, 3.5],
        ];
        let all: Vec<f64> = groups.iter().flatten().copied().collect();
        let mean = all.iter().sum::<f64>() / all.len() as f64;
        let loo: Vec<f64> = (0..groups.len())
            .map(|skip| {
                let rest: Vec<f64> = groups
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .flat_map(|(_, g)| g.iter().copied())
                    .collect();
                rest.iter().sum::<f64>() / rest.len() as f64
            })
            .collect();
        let sizes = [3usize, 3, 3];
        let v = grouped_jackknife_variance(mean, &loo, &sizes).unwrap();
        // Classical delete-one jackknife over the k group means:
        // v = (k-1)/k · Σ (θ̂₍₋b₎ − mean(θ̂₍₋·₎))².
        let loo_mean = loo.iter().sum::<f64>() / loo.len() as f64;
        let classical = loo.iter().map(|x| (x - loo_mean).powi(2)).sum::<f64>() * 2.0 / 3.0;
        assert!((v - classical).abs() < 1e-12, "{v} vs {classical}");
        assert!(v > 0.0);
    }

    #[test]
    fn grouped_jackknife_handles_unequal_groups_and_degenerate_input() {
        // A constant estimator has zero estimated variance whatever the
        // group sizes.
        let v = grouped_jackknife_variance(0.5, &[0.5, 0.5, 0.5], &[10, 20, 40]).unwrap();
        assert!(v.abs() < 1e-18);
        // Fewer than two groups, size mismatch, or empty groups: no answer.
        assert!(grouped_jackknife_variance(0.5, &[0.5], &[10]).is_none());
        assert!(grouped_jackknife_variance(0.5, &[0.5, 0.6], &[10]).is_none());
        assert!(grouped_jackknife_variance(0.5, &[0.5, 0.6], &[10, 0]).is_none());
        // More spread between leave-one-out estimates means more variance.
        let tight = grouped_jackknife_variance(0.5, &[0.49, 0.51], &[10, 10]).unwrap();
        let wide = grouped_jackknife_variance(0.5, &[0.4, 0.6], &[10, 10]).unwrap();
        assert!(wide > tight);
    }

    #[test]
    fn summary_stats_edge_cases() {
        assert!(SummaryStats::from_values(&[]).is_none());
        let single = SummaryStats::from_values(&[2.5]).unwrap();
        assert_eq!(single.std_dev, 0.0);
        assert_eq!(single.median, 2.5);
        assert_eq!(single.p95, 2.5);
    }
}
