//! **Timing** — the motivation for SampleCF: estimating from a sample must be
//! far cheaper than actually compressing the index.  (The criterion benches
//! in `benches/` measure the same quantities with statistical rigour; this
//! table gives a quick single-run overview for `EXPERIMENTS.md`.)

use crate::report::{fmt, Report, Table};
use crate::workloads::paper_table;
use samplecf_compression::{scheme_by_name, scheme_names};
use samplecf_core::{ExactCf, SampleCf};
use samplecf_index::IndexSpec;

/// Run the experiment.
pub fn run(quick: bool) -> Report {
    let sizes: Vec<usize> = if quick {
        vec![10_000, 50_000]
    } else {
        vec![20_000, 100_000, 300_000]
    };
    let width: u16 = 40;
    let f = 0.01;
    let spec = IndexSpec::nonclustered("idx_a", ["a"]).expect("valid spec");

    let mut report = Report::new("exp_timing");
    let mut t = Table::new(
        format!("Wall-clock cost of exact CF vs SampleCF (f = {f}), single run per cell"),
        &[
            "n",
            "scheme",
            "exact CF",
            "estimate",
            "ratio error",
            "exact ms",
            "estimate ms",
            "speed-up",
        ],
    );
    for &n in &sizes {
        let generated = paper_table(n, width, n / 10, 12_345);
        for name in scheme_names() {
            if name == "none" {
                continue;
            }
            let scheme = scheme_by_name(name).expect("known scheme");
            let exact = ExactCf::new()
                .compute(&generated.table, &spec, scheme.as_ref())
                .expect("exact succeeds");
            let est = SampleCf::with_fraction(f)
                .seed(3)
                .estimate(&generated.table, &spec, scheme.as_ref())
                .expect("estimate succeeds");
            let exact_ms = exact.elapsed.as_secs_f64() * 1e3;
            let est_ms = est.elapsed.as_secs_f64() * 1e3;
            t.row(&[
                n.to_string(),
                name.to_string(),
                fmt(exact.cf),
                fmt(est.cf),
                fmt(samplecf_core::ratio_error(est.cf, exact.cf)),
                fmt(exact_ms),
                fmt(est_ms),
                format!("{:.1}x", exact_ms / est_ms.max(1e-6)),
            ]);
        }
    }
    t.note(
        "Expected shape: the estimate costs a small, nearly size-independent amount (dominated \
         by drawing the sample), while the exact computation grows linearly with n — the gap \
         approaches the 1/f factor that motivates sampling in the first place.",
    );
    report.add(t);
    report
}
