//! Row-level uniform samplers.

use crate::error::SamplingResult;
use crate::sampler::{fetch_positions, target_size, validate_fraction, RowSampler, SampledRow};
use crate::stream::{fetch_positions_coalesced, PageCache};
use rand::seq::index;
use rand::Rng;
use rand::RngCore;
use samplecf_storage::{PageId, TableSource};

/// Uniform random sampling of rows *with replacement* — the procedure the
/// paper's analysis assumes (Section II-C).
#[derive(Debug, Clone, Copy)]
pub struct UniformWithReplacement {
    fraction: f64,
}

impl UniformWithReplacement {
    /// Create a sampler drawing `round(fraction · n)` rows with replacement.
    pub fn new(fraction: f64) -> SamplingResult<Self> {
        Ok(UniformWithReplacement {
            fraction: validate_fraction(fraction)?,
        })
    }

    /// The sampling fraction.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        self.fraction
    }
}

impl RowSampler for UniformWithReplacement {
    fn name(&self) -> &'static str {
        "uniform-with-replacement"
    }

    fn sample(
        &self,
        source: &dyn TableSource,
        rng: &mut dyn RngCore,
    ) -> SamplingResult<Vec<SampledRow>> {
        let rids = source.rids()?;
        let n = rids.len();
        let r = target_size(n, self.fraction);
        if r == 0 {
            return Ok(Vec::new());
        }
        let positions: Vec<usize> = (0..r).map(|_| rng.gen_range(0..n)).collect();
        // Page-coalesced fetch: the drawn rids are sorted so that every
        // distinct page is read exactly once, however many drawn rows (or
        // with-replacement duplicates) land on it.  The estimator is
        // insensitive to the resulting rid order — the index bulk load
        // re-sorts by key — and the I/O drops from one page read per drawn
        // row to one per distinct page.
        fetch_positions_coalesced(source, &rids, &positions, &mut PageCache::new())
    }

    fn expected_sample_size(&self, n: usize) -> usize {
        target_size(n, self.fraction)
    }
}

/// Uniform random sampling of rows *without replacement*.
#[derive(Debug, Clone, Copy)]
pub struct UniformWithoutReplacement {
    fraction: f64,
}

impl UniformWithoutReplacement {
    /// Create a sampler drawing `round(fraction · n)` distinct rows.
    pub fn new(fraction: f64) -> SamplingResult<Self> {
        Ok(UniformWithoutReplacement {
            fraction: validate_fraction(fraction)?,
        })
    }
}

impl RowSampler for UniformWithoutReplacement {
    fn name(&self) -> &'static str {
        "uniform-without-replacement"
    }

    fn sample(
        &self,
        source: &dyn TableSource,
        rng: &mut dyn RngCore,
    ) -> SamplingResult<Vec<SampledRow>> {
        let rids = source.rids()?;
        let n = rids.len();
        let r = target_size(n, self.fraction);
        if r == 0 {
            return Ok(Vec::new());
        }
        let positions = index::sample(rng, n, r).into_vec();
        fetch_positions(source, &rids, &positions)
    }

    fn expected_sample_size(&self, n: usize) -> usize {
        target_size(n, self.fraction)
    }
}

/// Bernoulli sampling: every row is included independently with probability
/// `fraction`, so the sample size itself is random.
#[derive(Debug, Clone, Copy)]
pub struct BernoulliSampler {
    fraction: f64,
}

impl BernoulliSampler {
    /// Create a Bernoulli sampler with the given inclusion probability.
    pub fn new(fraction: f64) -> SamplingResult<Self> {
        Ok(BernoulliSampler {
            fraction: validate_fraction(fraction)?,
        })
    }
}

impl RowSampler for BernoulliSampler {
    fn name(&self) -> &'static str {
        "bernoulli"
    }

    fn sample(
        &self,
        source: &dyn TableSource,
        rng: &mut dyn RngCore,
    ) -> SamplingResult<Vec<SampledRow>> {
        // Stream page by page; only the sample accumulates in memory.
        let mut out = Vec::new();
        for pid in 0..source.num_pages() {
            for (rid, row) in source.page_rows(pid as PageId)? {
                if rng.gen::<f64>() < self.fraction {
                    out.push((rid, row));
                }
            }
        }
        Ok(out)
    }

    fn expected_sample_size(&self, n: usize) -> usize {
        (n as f64 * self.fraction).round() as usize
    }
}

/// Systematic sampling: a random starting offset followed by every
/// `⌈1/fraction⌉`-th row.  Cheap to execute but sensitive to periodic data;
/// included as a baseline sampler for the block-sampling experiments.
#[derive(Debug, Clone, Copy)]
pub struct SystematicSampler {
    fraction: f64,
}

impl SystematicSampler {
    /// Create a systematic sampler with the given target fraction.
    pub fn new(fraction: f64) -> SamplingResult<Self> {
        Ok(SystematicSampler {
            fraction: validate_fraction(fraction)?,
        })
    }
}

impl RowSampler for SystematicSampler {
    fn name(&self) -> &'static str {
        "systematic"
    }

    fn sample(
        &self,
        source: &dyn TableSource,
        rng: &mut dyn RngCore,
    ) -> SamplingResult<Vec<SampledRow>> {
        let n = source.num_rows();
        if n == 0 {
            return Ok(Vec::new());
        }
        let step = (1.0 / self.fraction).round().max(1.0) as usize;
        let start = rng.gen_range(0..step.min(n));
        // Stream page by page; only every `step`-th row is kept.
        let mut out = Vec::new();
        let mut i = 0usize;
        for pid in 0..source.num_pages() {
            for pair in source.page_rows(pid as PageId)? {
                if i >= start && (i - start) % step == 0 {
                    out.push(pair);
                }
                i += 1;
            }
        }
        Ok(out)
    }

    fn expected_sample_size(&self, n: usize) -> usize {
        let step = (1.0 / self.fraction).round().max(1.0) as usize;
        n.div_ceil(step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use samplecf_storage::{Row, Schema, Table, TableBuilder, Value};
    use std::collections::HashSet;

    fn table(n: usize) -> Table {
        TableBuilder::new("t", Schema::single_char("a", 16))
            .build_with_rows((0..n).map(|i| Row::new(vec![Value::str(format!("v{i:06}"))])))
            .unwrap()
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn with_replacement_draws_exact_count_and_allows_duplicates() {
        let t = table(200);
        let s = UniformWithReplacement::new(0.5).unwrap();
        let sample = s.sample(&t, &mut rng(1)).unwrap();
        assert_eq!(sample.len(), 100);
        assert_eq!(s.expected_sample_size(200), 100);
        // With 100 draws from 200 rows, duplicates are essentially certain.
        let distinct: HashSet<_> = sample.iter().map(|(rid, _)| *rid).collect();
        assert!(distinct.len() < sample.len());
    }

    #[test]
    fn without_replacement_draws_distinct_rows() {
        let t = table(200);
        let s = UniformWithoutReplacement::new(0.25).unwrap();
        let sample = s.sample(&t, &mut rng(2)).unwrap();
        assert_eq!(sample.len(), 50);
        let distinct: HashSet<_> = sample.iter().map(|(rid, _)| *rid).collect();
        assert_eq!(distinct.len(), 50);
    }

    #[test]
    fn bernoulli_sample_size_is_near_expectation() {
        let t = table(5000);
        let s = BernoulliSampler::new(0.1).unwrap();
        let sample = s.sample(&t, &mut rng(3)).unwrap();
        let expected = s.expected_sample_size(5000) as f64;
        assert!((sample.len() as f64 - expected).abs() < 5.0 * (5000.0f64 * 0.1 * 0.9).sqrt());
    }

    #[test]
    fn systematic_sampler_covers_the_table_evenly() {
        let t = table(1000);
        let s = SystematicSampler::new(0.01).unwrap();
        let sample = s.sample(&t, &mut rng(4)).unwrap();
        assert!((sample.len() as i64 - 10).abs() <= 1);
        // Consecutive picks are exactly 100 apart.
        let ids: Vec<i64> = sample
            .iter()
            .map(|(_, r)| r.value(0).as_str().unwrap()[1..].parse::<i64>().unwrap())
            .collect();
        for w in ids.windows(2) {
            assert_eq!(w[1] - w[0], 100);
        }
    }

    #[test]
    fn small_fractions_still_return_at_least_one_row() {
        let t = table(50);
        let s = UniformWithReplacement::new(0.001).unwrap();
        assert_eq!(s.sample(&t, &mut rng(5)).unwrap().len(), 1);
        let s = UniformWithoutReplacement::new(0.001).unwrap();
        assert_eq!(s.sample(&t, &mut rng(5)).unwrap().len(), 1);
    }

    #[test]
    fn empty_table_yields_empty_samples() {
        let t = table(0);
        assert!(UniformWithReplacement::new(0.1)
            .unwrap()
            .sample(&t, &mut rng(6))
            .unwrap()
            .is_empty());
        assert!(UniformWithoutReplacement::new(0.1)
            .unwrap()
            .sample(&t, &mut rng(6))
            .unwrap()
            .is_empty());
        assert!(BernoulliSampler::new(0.1)
            .unwrap()
            .sample(&t, &mut rng(6))
            .unwrap()
            .is_empty());
        assert!(SystematicSampler::new(0.1)
            .unwrap()
            .sample(&t, &mut rng(6))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn empty_table_expected_sizes_are_zero() {
        // Unified edge behaviour: every sampler expects 0 rows from 0 rows.
        assert_eq!(
            UniformWithReplacement::new(0.1)
                .unwrap()
                .expected_sample_size(0),
            0
        );
        assert_eq!(
            UniformWithoutReplacement::new(1.0)
                .unwrap()
                .expected_sample_size(0),
            0
        );
        assert_eq!(
            BernoulliSampler::new(0.5).unwrap().expected_sample_size(0),
            0
        );
        assert_eq!(
            SystematicSampler::new(0.5).unwrap().expected_sample_size(0),
            0
        );
    }

    #[test]
    fn full_fraction_returns_the_whole_table() {
        // Unified edge behaviour: fraction == 1.0 covers every row.
        let t = table(120);
        let s = UniformWithoutReplacement::new(1.0).unwrap();
        let sample = s.sample(&t, &mut rng(8)).unwrap();
        assert_eq!(sample.len(), 120);
        let distinct: HashSet<_> = sample.iter().map(|(rid, _)| *rid).collect();
        assert_eq!(distinct.len(), 120);

        let s = UniformWithReplacement::new(1.0).unwrap();
        assert_eq!(s.sample(&t, &mut rng(8)).unwrap().len(), 120);

        let s = SystematicSampler::new(1.0).unwrap();
        assert_eq!(s.sample(&t, &mut rng(8)).unwrap().len(), 120);
    }

    #[test]
    fn invalid_fractions_rejected() {
        assert!(UniformWithReplacement::new(0.0).is_err());
        assert!(UniformWithoutReplacement::new(2.0).is_err());
        assert!(BernoulliSampler::new(-1.0).is_err());
        assert!(SystematicSampler::new(f64::INFINITY).is_err());
    }

    #[test]
    fn sampling_is_reproducible_for_a_fixed_seed() {
        let t = table(300);
        let s = UniformWithReplacement::new(0.1).unwrap();
        let a = s.sample(&t, &mut rng(42)).unwrap();
        let b = s.sample(&t, &mut rng(42)).unwrap();
        assert_eq!(a, b);
        let c = s.sample(&t, &mut rng(43)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn inclusion_probabilities_are_roughly_uniform() {
        // Draw many with-replacement samples and check that every row is hit
        // a comparable number of times (loose 3x band).
        let t = table(50);
        let s = UniformWithReplacement::new(1.0).unwrap();
        let mut counts = vec![0usize; 50];
        let mut r = rng(7);
        for _ in 0..200 {
            for (_, row) in s.sample(&t, &mut r).unwrap() {
                let id: usize = row.value(0).as_str().unwrap()[1..].parse().unwrap();
                counts[id] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        let mean = total as f64 / 50.0;
        for c in counts {
            assert!(
                (c as f64) > mean / 3.0 && (c as f64) < mean * 3.0,
                "count {c} vs mean {mean}"
            );
        }
    }
}
