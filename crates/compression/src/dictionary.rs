//! Dictionary compression (the paper's Figure 1.b).
//!
//! Two variants are provided:
//!
//! * [`DictionaryCompression`] — the realistic, *paged* variant: every chunk
//!   (one column within one page) carries its own inline dictionary, exactly
//!   as commercial systems do so that dictionary lookups never require extra
//!   I/O.  A distinct value that appears on `Pg(i)` pages is therefore stored
//!   `Pg(i)` times, which is the paging effect the paper's full model
//!   captures.
//! * [`GlobalDictionaryCompression`] — the paper's *simplified* analytical
//!   model: a single dictionary shared by the whole column, in which each
//!   distinct value is stored exactly once and every row stores only a
//!   pointer.  Its compression fraction is `(n·p + d·k)/(n·k)`.

use crate::chunk::{ColumnChunk, CompressedChunk, CompressedColumn};
use crate::encoding::{read_ns_cell, read_uint, write_ns_cell, write_uint};
use crate::error::{CompressionError, CompressionResult};
use crate::measure::{ns_cell_size_raw, CellChunk};
use crate::scheme::CompressionScheme;
use crate::scratch::with_distinct_scratch;
use samplecf_storage::{DataType, Value};
use std::collections::HashMap;

/// How wide the per-row dictionary pointers are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PointerWidth {
    /// Use the minimal whole number of bytes able to address the dictionary
    /// (⌈log₂ d / 8⌉, at least one byte).
    #[default]
    Auto,
    /// Use a fixed number of bytes (1..=8), as engines with a fixed symbol
    /// width do.
    Fixed(usize),
}

impl PointerWidth {
    /// Resolve the pointer width in bytes for a dictionary of `dict_len` entries.
    pub fn resolve(&self, dict_len: usize) -> CompressionResult<usize> {
        match self {
            PointerWidth::Auto => {
                let max_index = dict_len.saturating_sub(1) as u64;
                let mut bytes = 1usize;
                while bytes < 8 && max_index > (1u64 << (8 * bytes)) - 1 {
                    bytes += 1;
                }
                Ok(bytes)
            }
            PointerWidth::Fixed(b) => {
                if *b == 0 || *b > 8 {
                    return Err(CompressionError::InvalidConfig(format!(
                        "pointer width must be between 1 and 8 bytes, got {b}"
                    )));
                }
                let max_index = dict_len.saturating_sub(1) as u64;
                if *b < 8 && max_index > (1u64 << (8 * b)) - 1 {
                    return Err(CompressionError::InvalidConfig(format!(
                        "{b}-byte pointers cannot address a dictionary of {dict_len} entries"
                    )));
                }
                Ok(*b)
            }
        }
    }
}

/// Configuration shared by both dictionary variants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DictionaryConfig {
    /// Pointer width policy.
    pub pointer_width: PointerWidth,
}

fn build_dictionary<'a, I>(values: I) -> (Vec<&'a Value>, HashMap<&'a Value, usize>)
where
    I: IntoIterator<Item = &'a Value>,
{
    let mut entries = Vec::new();
    let mut index: HashMap<&Value, usize> = HashMap::new();
    for v in values {
        if !index.contains_key(v) {
            index.insert(v, entries.len());
            entries.push(v);
        }
    }
    (entries, index)
}

fn encode_dictionary(
    entries: &[&Value],
    datatype: &DataType,
    out: &mut Vec<u8>,
) -> CompressionResult<()> {
    for v in entries {
        write_ns_cell(out, v, datatype)?;
    }
    Ok(())
}

fn decode_dictionary(
    bytes: &[u8],
    offset: &mut usize,
    dict_len: usize,
    datatype: &DataType,
) -> CompressionResult<Vec<Value>> {
    let mut entries = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        entries.push(read_ns_cell(bytes, offset, datatype)?);
    }
    Ok(entries)
}

/// Page-local dictionary compression: each chunk carries an inline dictionary.
#[derive(Debug, Clone, Copy, Default)]
pub struct DictionaryCompression {
    config: DictionaryConfig,
}

impl DictionaryCompression {
    /// Create with the given configuration.
    #[must_use]
    pub fn new(config: DictionaryConfig) -> Self {
        DictionaryCompression { config }
    }

    /// Create with a fixed pointer width in bytes.
    #[must_use]
    pub fn with_pointer_bytes(bytes: usize) -> Self {
        DictionaryCompression {
            config: DictionaryConfig {
                pointer_width: PointerWidth::Fixed(bytes),
            },
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> DictionaryConfig {
        self.config
    }
}

impl CompressionScheme for DictionaryCompression {
    fn name(&self) -> &'static str {
        "dictionary-paged"
    }

    fn compress_chunk(&self, chunk: &ColumnChunk) -> CompressionResult<CompressedChunk> {
        let dt = chunk.datatype();
        let (entries, index) = build_dictionary(chunk.values());
        let ptr_width = self.config.pointer_width.resolve(entries.len().max(1))?;

        let mut out = Vec::new();
        out.extend_from_slice(&(chunk.len() as u16).to_be_bytes());
        out.extend_from_slice(&(entries.len() as u16).to_be_bytes());
        out.push(ptr_width as u8);
        encode_dictionary(&entries, &dt, &mut out)?;
        for v in chunk.values() {
            write_uint(&mut out, index[v] as u64, ptr_width);
        }
        Ok(CompressedChunk::new(out))
    }

    /// Closed form: account distinct cells (null flag + raw bytes, which is
    /// value identity) for the inline dictionary, then header + pointers.
    ///
    /// Distinct counting runs on the thread-local [`crate::DistinctScratch`] table
    /// (cleared, not reallocated, between chunks), so the per-(page, column)
    /// measure loop does no allocation and no `SipHash` work.
    fn measure_chunk(&self, chunk: &CellChunk<'_>) -> CompressionResult<usize> {
        let dt = chunk.datatype();
        let cells = chunk.cells();
        let (distinct, dict_bytes) = with_distinct_scratch(|scratch| {
            scratch.reset(cells.len());
            let mut dict_bytes = 0usize;
            for (i, c) in cells.iter().enumerate() {
                if scratch.insert(*c, i as u64, |h| cells[h as usize]) {
                    dict_bytes += ns_cell_size_raw(*c, &dt);
                }
            }
            (scratch.len(), dict_bytes)
        });
        let ptr_width = self.config.pointer_width.resolve(distinct.max(1))?;
        Ok(2 + 2 + 1 + dict_bytes + chunk.len() * ptr_width)
    }

    fn decompress_chunk(
        &self,
        chunk: &CompressedChunk,
        datatype: DataType,
    ) -> CompressionResult<ColumnChunk> {
        let bytes = chunk.bytes();
        if bytes.len() < 5 {
            return Err(CompressionError::Corrupt(
                "dictionary chunk header truncated".into(),
            ));
        }
        let n = u16::from_be_bytes([bytes[0], bytes[1]]) as usize;
        let dict_len = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        let ptr_width = bytes[4] as usize;
        if ptr_width == 0 || ptr_width > 8 {
            return Err(CompressionError::Corrupt(format!(
                "invalid pointer width {ptr_width}"
            )));
        }
        let mut offset = 5;
        let entries = decode_dictionary(bytes, &mut offset, dict_len, &datatype)?;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            let idx = read_uint(bytes, &mut offset, ptr_width)? as usize;
            let v = entries.get(idx).ok_or_else(|| {
                CompressionError::Corrupt(format!("pointer {idx} outside dictionary of {dict_len}"))
            })?;
            values.push(v.clone());
        }
        if offset != bytes.len() {
            return Err(CompressionError::Corrupt(
                "trailing bytes in dictionary chunk".into(),
            ));
        }
        ColumnChunk::new(datatype, values)
    }
}

/// The paper's simplified model: one dictionary for the whole column, stored
/// once, with every row holding a pointer into it.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalDictionaryCompression {
    config: DictionaryConfig,
}

impl GlobalDictionaryCompression {
    /// Create with the given configuration.
    #[must_use]
    pub fn new(config: DictionaryConfig) -> Self {
        GlobalDictionaryCompression { config }
    }

    /// Create with a fixed pointer width in bytes.
    #[must_use]
    pub fn with_pointer_bytes(bytes: usize) -> Self {
        GlobalDictionaryCompression {
            config: DictionaryConfig {
                pointer_width: PointerWidth::Fixed(bytes),
            },
        }
    }
}

impl CompressionScheme for GlobalDictionaryCompression {
    fn name(&self) -> &'static str {
        "dictionary-global"
    }

    /// Per-chunk compression degenerates to the paged variant: a global
    /// dictionary over a single page *is* a page-local dictionary.
    fn compress_chunk(&self, chunk: &ColumnChunk) -> CompressionResult<CompressedChunk> {
        DictionaryCompression::new(self.config).compress_chunk(chunk)
    }

    /// As with compression, a single chunk measures like the paged variant.
    fn measure_chunk(&self, chunk: &CellChunk<'_>) -> CompressionResult<usize> {
        DictionaryCompression::new(self.config).measure_chunk(chunk)
    }

    /// Closed form for the shared dictionary: one distinct-cell account over
    /// all chunks, then per-chunk pointer arrays.
    fn measure_chunks(&self, chunks: &[CellChunk<'_>]) -> CompressionResult<usize> {
        if chunks.is_empty() {
            return Ok(0);
        }
        let dt = chunks[0].datatype();
        for c in chunks {
            if c.datatype() != dt {
                return Err(CompressionError::InvalidConfig(
                    "all chunks of a column must share a data type".to_string(),
                ));
            }
        }
        // One distinct account over all chunks on the shared scratch table;
        // handles pack (chunk index, cell position) so the probe can resolve
        // a stored handle back to its borrowed cell.
        let total: usize = chunks.iter().map(CellChunk::len).sum();
        let (distinct, dict_bytes) = with_distinct_scratch(|scratch| {
            scratch.reset(total);
            let mut dict_bytes = 0usize;
            for (ci, chunk) in chunks.iter().enumerate() {
                let cells = chunk.cells();
                for (i, c) in cells.iter().enumerate() {
                    let handle = ((ci as u64) << 32) | i as u64;
                    let fresh = scratch.insert(*c, handle, |h| {
                        chunks[(h >> 32) as usize].cells()[(h & 0xffff_ffff) as usize]
                    });
                    if fresh {
                        dict_bytes += ns_cell_size_raw(*c, &dt);
                    }
                }
            }
            (scratch.len(), dict_bytes)
        });
        let ptr_width = self.config.pointer_width.resolve(distinct.max(1))?;
        let shared = 4 + 1 + dict_bytes;
        let pointers: usize = chunks.iter().map(|c| 2 + c.len() * ptr_width).sum();
        Ok(shared + pointers)
    }

    fn decompress_chunk(
        &self,
        chunk: &CompressedChunk,
        datatype: DataType,
    ) -> CompressionResult<ColumnChunk> {
        DictionaryCompression::new(self.config).decompress_chunk(chunk, datatype)
    }

    fn compress_column(&self, chunks: &[ColumnChunk]) -> CompressionResult<CompressedColumn> {
        if chunks.is_empty() {
            return Ok(CompressedColumn::from_chunks(Vec::new()));
        }
        let dt = chunks[0].datatype();
        for c in chunks {
            if c.datatype() != dt {
                return Err(CompressionError::InvalidConfig(
                    "all chunks of a column must share a data type".to_string(),
                ));
            }
        }
        let (entries, index) = build_dictionary(chunks.iter().flat_map(ColumnChunk::values));
        let ptr_width = self.config.pointer_width.resolve(entries.len().max(1))?;

        let mut shared = Vec::new();
        shared.extend_from_slice(&(entries.len() as u32).to_be_bytes());
        shared.push(ptr_width as u8);
        encode_dictionary(&entries, &dt, &mut shared)?;

        let mut compressed_chunks = Vec::with_capacity(chunks.len());
        for chunk in chunks {
            let mut out = Vec::with_capacity(2 + chunk.len() * ptr_width);
            out.extend_from_slice(&(chunk.len() as u16).to_be_bytes());
            for v in chunk.values() {
                write_uint(&mut out, index[v] as u64, ptr_width);
            }
            compressed_chunks.push(CompressedChunk::new(out));
        }
        Ok(CompressedColumn {
            shared,
            chunks: compressed_chunks,
        })
    }

    fn decompress_column(
        &self,
        column: &CompressedColumn,
        datatype: DataType,
    ) -> CompressionResult<Vec<ColumnChunk>> {
        if column.chunks.is_empty() {
            return Ok(Vec::new());
        }
        if column.shared.is_empty() {
            return Err(CompressionError::MissingSharedState("global dictionary"));
        }
        let shared = &column.shared;
        if shared.len() < 5 {
            return Err(CompressionError::Corrupt(
                "global dictionary header truncated".into(),
            ));
        }
        let dict_len = u32::from_be_bytes([shared[0], shared[1], shared[2], shared[3]]) as usize;
        let ptr_width = shared[4] as usize;
        if ptr_width == 0 || ptr_width > 8 {
            return Err(CompressionError::Corrupt(format!(
                "invalid pointer width {ptr_width}"
            )));
        }
        let mut offset = 5;
        let entries = decode_dictionary(shared, &mut offset, dict_len, &datatype)?;

        let mut result = Vec::with_capacity(column.chunks.len());
        for chunk in &column.chunks {
            let bytes = chunk.bytes();
            if bytes.len() < 2 {
                return Err(CompressionError::Corrupt("chunk header truncated".into()));
            }
            let n = u16::from_be_bytes([bytes[0], bytes[1]]) as usize;
            let mut off = 2;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                let idx = read_uint(bytes, &mut off, ptr_width)? as usize;
                let v = entries.get(idx).ok_or_else(|| {
                    CompressionError::Corrupt(format!(
                        "pointer {idx} outside global dictionary of {dict_len}"
                    ))
                })?;
                values.push(v.clone());
            }
            result.push(ColumnChunk::new(datatype, values)?);
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::measure_column;

    fn chunk(k: u16, strings: &[&str]) -> ColumnChunk {
        ColumnChunk::new(
            DataType::Char(k),
            strings.iter().map(|s| Value::str(*s)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn pointer_width_resolution() {
        assert_eq!(PointerWidth::Auto.resolve(1).unwrap(), 1);
        assert_eq!(PointerWidth::Auto.resolve(256).unwrap(), 1);
        assert_eq!(PointerWidth::Auto.resolve(257).unwrap(), 2);
        assert_eq!(PointerWidth::Auto.resolve(70_000).unwrap(), 3);
        assert_eq!(PointerWidth::Fixed(2).resolve(100).unwrap(), 2);
        assert!(PointerWidth::Fixed(1).resolve(300).is_err());
        assert!(PointerWidth::Fixed(0).resolve(10).is_err());
        assert!(PointerWidth::Fixed(9).resolve(10).is_err());
    }

    #[test]
    fn paged_roundtrip() {
        let c = chunk(12, &["aa", "bb", "aa", "cc", "aa", "bb"]);
        let dict = DictionaryCompression::default();
        let compressed = dict.compress_chunk(&c).unwrap();
        assert_eq!(
            dict.decompress_chunk(&compressed, DataType::Char(12))
                .unwrap(),
            c
        );
    }

    #[test]
    fn paged_roundtrip_with_nulls() {
        let c = ColumnChunk::new(
            DataType::Char(6),
            vec![Value::Null, Value::str("x"), Value::Null, Value::str("x")],
        )
        .unwrap();
        let dict = DictionaryCompression::default();
        let compressed = dict.compress_chunk(&c).unwrap();
        assert_eq!(
            dict.decompress_chunk(&compressed, DataType::Char(6))
                .unwrap(),
            c
        );
    }

    #[test]
    fn repeated_values_compress_well() {
        let c = chunk(20, &["abcdefghij"; 500]);
        let dict = DictionaryCompression::default();
        let compressed = dict.compress_chunk(&c).unwrap();
        let cf = compressed.compressed_bytes() as f64 / c.uncompressed_bytes() as f64;
        assert!(
            cf < 0.1,
            "one distinct value over 500 rows should compress hard, cf = {cf}"
        );
    }

    #[test]
    fn all_distinct_values_do_not_compress() {
        let strings: Vec<String> = (0..300).map(|i| format!("value-{i:06}")).collect();
        let refs: Vec<&str> = strings.iter().map(String::as_str).collect();
        let c = chunk(12, &refs);
        let dict = DictionaryCompression::default();
        let compressed = dict.compress_chunk(&c).unwrap();
        let cf = compressed.compressed_bytes() as f64 / c.uncompressed_bytes() as f64;
        assert!(
            cf > 0.9,
            "all-distinct data should not shrink much, cf = {cf}"
        );
    }

    #[test]
    fn global_roundtrip_across_chunks() {
        let chunks = vec![
            chunk(10, &["a", "b", "c", "a"]),
            chunk(10, &["b", "b", "d"]),
            chunk(10, &["a"]),
        ];
        let global = GlobalDictionaryCompression::default();
        let col = global.compress_column(&chunks).unwrap();
        assert!(!col.shared.is_empty());
        let back = global.decompress_column(&col, DataType::Char(10)).unwrap();
        assert_eq!(back, chunks);
    }

    #[test]
    fn global_stores_each_distinct_value_once() {
        // 4 pages all containing the same single value: the global variant
        // should be smaller than the paged variant, which repeats the value
        // in every page's dictionary.
        let chunks: Vec<ColumnChunk> = (0..4).map(|_| chunk(30, &["shared-value"; 100])).collect();
        let paged = measure_column(&DictionaryCompression::default(), &chunks).unwrap();
        let global = measure_column(&GlobalDictionaryCompression::default(), &chunks).unwrap();
        assert!(global.compressed_bytes < paged.compressed_bytes);
    }

    #[test]
    fn global_per_chunk_api_degenerates_to_paged() {
        let c = chunk(8, &["x", "y", "x"]);
        let g = GlobalDictionaryCompression::default();
        let p = DictionaryCompression::default();
        assert_eq!(
            g.compress_chunk(&c).unwrap().bytes(),
            p.compress_chunk(&c).unwrap().bytes()
        );
    }

    #[test]
    fn mismatched_chunk_types_rejected() {
        let chunks = vec![
            chunk(8, &["a"]),
            ColumnChunk::new(DataType::Int64, vec![Value::int(1)]).unwrap(),
        ];
        assert!(GlobalDictionaryCompression::default()
            .compress_column(&chunks)
            .is_err());
    }

    #[test]
    fn corrupt_streams_rejected() {
        let dict = DictionaryCompression::default();
        assert!(dict
            .decompress_chunk(&CompressedChunk::new(vec![0, 1]), DataType::Char(4))
            .is_err());
        // Pointer outside dictionary.
        let c = chunk(4, &["a", "b"]);
        let mut bytes = dict.compress_chunk(&c).unwrap().bytes().to_vec();
        let last = bytes.len() - 1;
        bytes[last] = 250;
        assert!(dict
            .decompress_chunk(&CompressedChunk::new(bytes), DataType::Char(4))
            .is_err());
        // Global decompress without shared state.
        let col = CompressedColumn::from_chunks(vec![CompressedChunk::new(vec![0, 0])]);
        assert!(GlobalDictionaryCompression::default()
            .decompress_column(&col, DataType::Char(4))
            .is_err());
    }

    #[test]
    fn empty_column_roundtrips() {
        let global = GlobalDictionaryCompression::default();
        let col = global.compress_column(&[]).unwrap();
        assert_eq!(col.compressed_bytes(), 0);
        assert!(global
            .decompress_column(&col, DataType::Char(4))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn fixed_pointer_width_is_respected() {
        let c = chunk(10, &["a", "b", "c"]);
        let auto = DictionaryCompression::default().compress_chunk(&c).unwrap();
        let wide = DictionaryCompression::with_pointer_bytes(4)
            .compress_chunk(&c)
            .unwrap();
        assert_eq!(wide.compressed_bytes() - auto.compressed_bytes(), 3 * 3);
    }
}
