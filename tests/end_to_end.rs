//! End-to-end integration tests spanning every crate: generate data, build
//! indexes, compress them, sample, estimate, and compare with ground truth.

use samplecf::prelude::*;

fn demo_table(n: usize, d: usize, seed: u64) -> Table {
    presets::variable_length_table("t", n, 32, d, 4, 28, seed)
        .generate()
        .expect("generation succeeds")
        .table
}

#[test]
fn every_scheme_and_sampler_combination_produces_a_sane_estimate() {
    let table = demo_table(8_000, 400, 1);
    let spec = IndexSpec::nonclustered("i", ["a"]).unwrap();
    let samplers = [
        SamplerKind::UniformWithReplacement(0.05),
        SamplerKind::UniformWithoutReplacement(0.05),
        SamplerKind::Bernoulli(0.05),
        SamplerKind::Systematic(0.05),
        SamplerKind::Reservoir(400),
        SamplerKind::Block(0.05),
    ];
    for scheme_name in scheme_names() {
        let scheme = scheme_by_name(scheme_name).unwrap();
        let exact = ExactCf::new()
            .compute(&table, &spec, scheme.as_ref())
            .unwrap();
        assert!(
            exact.cf > 0.0 && exact.cf < 1.2,
            "{scheme_name}: exact cf {}",
            exact.cf
        );
        for sampler in samplers {
            let est = SampleCf::new(sampler)
                .seed(3)
                .estimate(&table, &spec, scheme.as_ref())
                .unwrap();
            assert!(
                est.cf > 0.0 && est.cf < 1.5,
                "{scheme_name} with {sampler:?}: estimate {}",
                est.cf
            );
            assert!(est.data.rows > 0);
            assert!(est.data.rows < table.num_rows());
        }
    }
}

#[test]
fn clustered_and_nonclustered_indexes_compress_consistently() {
    let generated = presets::orders_table("orders", 6_000, 2)
        .generate()
        .unwrap();
    let table = generated.table;
    let clustered = IndexSpec::clustered("pk", ["order_id"]).unwrap();
    let secondary = IndexSpec::nonclustered("by_status", ["status"]).unwrap();
    let scheme = DictionaryCompression::default();

    let pk = ExactCf::new().compute(&table, &clustered, &scheme).unwrap();
    let by_status = ExactCf::new().compute(&table, &secondary, &scheme).unwrap();

    // The clustered index stores every column so its uncompressed footprint
    // is much larger than the single-column secondary index's.
    assert!(pk.report.uncompressed_data_bytes() > by_status.report.uncompressed_data_bytes());
    // The status column has 5 distinct values, so dictionary compression
    // crushes the secondary index.
    assert!(by_status.cf < 0.45, "status index cf = {}", by_status.cf);
    // Estimates track both.
    for (spec, exact) in [(&clustered, &pk), (&secondary, &by_status)] {
        let est = SampleCf::with_fraction(0.05)
            .seed(5)
            .estimate(&table, spec, &scheme)
            .unwrap();
        assert!(
            ratio_error(est.cf, exact.cf) < 1.6,
            "{}: est {} vs exact {}",
            spec.name(),
            est.cf,
            exact.cf
        );
    }
}

#[test]
fn index_lookup_agrees_with_table_scan_after_compression_roundtrip() {
    let table = demo_table(3_000, 40, 3);
    let spec = IndexSpec::nonclustered("i", ["a"]).unwrap();
    let index = IndexBuilder::new().build_from_table(&table, &spec).unwrap();

    // Pick an existing key and check the index finds all of its rows.
    let needle = table.scan().nth(17).unwrap().1.value(0).clone();
    let from_scan = table
        .scan()
        .filter(|(_, row)| row.value(0) == &needle)
        .count();
    let from_index = index.lookup(std::slice::from_ref(&needle)).unwrap();
    assert_eq!(from_index.len(), from_scan);
    for entry in from_index {
        let rid = entry.rid.expect("nonclustered entries have rids");
        assert_eq!(table.get(rid).unwrap().value(0), &needle);
    }

    // Compressing and decompressing the leaf level preserves every value.
    for scheme_name in scheme_names() {
        let scheme = scheme_by_name(scheme_name).unwrap();
        let report = compress_index(&index, scheme.as_ref()).unwrap();
        assert_eq!(report.num_entries, 3_000, "{scheme_name}");
    }
}

#[test]
fn estimator_handles_tiny_tables_and_full_sampling() {
    let table = demo_table(25, 5, 4);
    let spec = IndexSpec::nonclustered("i", ["a"]).unwrap();
    // A 100% "sample" reproduces the exact CF for deterministic samplers.
    let exact = ExactCf::new()
        .compute(&table, &spec, &NullSuppression)
        .unwrap();
    let est = SampleCf::new(SamplerKind::UniformWithoutReplacement(1.0))
        .estimate(&table, &spec, &NullSuppression)
        .unwrap();
    assert!((est.cf - exact.cf).abs() < 1e-9);
    // Tiny fractions still work (they draw at least one row).
    let est = SampleCf::with_fraction(0.001)
        .estimate(&table, &spec, &NullSuppression)
        .unwrap();
    assert!(est.data.rows >= 1);
}

#[test]
fn advisor_and_capacity_planner_agree_on_sizes() {
    let table = presets::variable_length_table("wide", 5_000, 50, 100, 4, 12, 6)
        .generate()
        .unwrap()
        .table
        .into_shared();
    let spec = IndexSpec::nonclustered("idx", ["a"]).unwrap();
    let scheme = NullSuppression;

    let advisor = CompressionAdvisor::new(AdvisorConfig {
        min_saving_fraction: 0.1,
        seed: 1,
        ..AdvisorConfig::with_fraction(0.05)
    })
    .unwrap();
    let advice = advisor
        .plan(&[Candidate::new(&table, &spec, &scheme)])
        .unwrap();

    let plan = CapacityPlanner::new(0.05)
        .plan(
            &[PlannedObject {
                table: &table,
                spec: spec.clone(),
            }],
            &scheme,
        )
        .unwrap();

    let a = &advice.recommendations[0];
    let p = &plan.objects[0];
    assert_eq!(a.uncompressed_bytes, p.uncompressed_bytes);
    // Both derive their compressed sizes from SampleCF estimates; they use
    // independent samples so allow a modest tolerance.
    let ratio = a.estimated_compressed_bytes as f64 / p.estimated_compressed_bytes as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "advisor {} vs planner {}",
        a.estimated_compressed_bytes,
        p.estimated_compressed_bytes
    );
    // This table pads heavily, so both should want to compress it.
    assert!(a.compress);
    assert!(p.estimated_cf < 0.6);
}

#[test]
fn catalog_supports_the_full_workflow() {
    let catalog = Catalog::new();
    catalog
        .register(
            presets::single_char_table("a", 1_000, 16, 20, 6, 1)
                .generate()
                .unwrap()
                .table,
        )
        .unwrap();
    catalog
        .register(
            presets::single_char_table("b", 2_000, 16, 2_000, 12, 2)
                .generate()
                .unwrap()
                .table,
        )
        .unwrap();
    assert_eq!(catalog.table_names(), vec!["a", "b"]);

    let table = catalog.get("a").unwrap();
    let spec = IndexSpec::nonclustered("i", ["a"]).unwrap();
    let est = SampleCf::with_fraction(0.1)
        .estimate(table.as_ref(), &spec, &DictionaryCompression::default())
        .unwrap();
    assert!(
        est.cf < 0.7,
        "low-cardinality table should compress, cf = {}",
        est.cf
    );
}

/// A unique temp path for disk-backed tests, removed on drop.
struct TempTableFile(std::path::PathBuf);

impl TempTableFile {
    fn new(tag: &str) -> Self {
        TempTableFile(
            std::env::temp_dir().join(format!("samplecf_e2e_{tag}_{}.scf", std::process::id())),
        )
    }
}

impl Drop for TempTableFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn disk_estimation_matches_in_memory_estimation_seed_for_seed() {
    let mem = demo_table(12_000, 600, 21);
    let file = TempTableFile::new("parity");
    let disk = DiskTable::materialize(&file.0, &mem).unwrap();
    let spec = IndexSpec::nonclustered("i", ["a"]).unwrap();

    for sampler in [
        SamplerKind::UniformWithReplacement(0.05),
        SamplerKind::UniformWithoutReplacement(0.05),
        SamplerKind::Bernoulli(0.05),
        SamplerKind::Systematic(0.05),
        SamplerKind::Reservoir(500),
        SamplerKind::Block(0.05),
    ] {
        for scheme_name in scheme_names() {
            let scheme = scheme_by_name(scheme_name).unwrap();
            let on_mem = SampleCf::new(sampler)
                .seed(77)
                .estimate(&mem, &spec, scheme.as_ref())
                .unwrap();
            let on_disk = SampleCf::new(sampler)
                .seed(77)
                .estimate(&disk, &spec, scheme.as_ref())
                .unwrap();
            assert_eq!(
                on_mem.cf, on_disk.cf,
                "{sampler:?}/{scheme_name}: disk and memory disagree"
            );
            assert_eq!(on_mem.data, on_disk.data, "{sampler:?}/{scheme_name}");
        }
    }

    // The exact baseline agrees too.
    let exact_mem = ExactCf::new()
        .compute(&mem, &spec, &NullSuppression)
        .unwrap();
    let exact_disk = ExactCf::new()
        .compute(&disk, &spec, &NullSuppression)
        .unwrap();
    assert_eq!(exact_mem.cf, exact_disk.cf);
}

#[test]
fn block_sampling_on_disk_reads_only_the_sampled_pages() {
    let mem = demo_table(30_000, 1_000, 22);
    let file = TempTableFile::new("block_io");
    let disk = DiskTable::materialize(&file.0, &mem).unwrap();
    let spec = IndexSpec::nonclustered("i", ["a"]).unwrap();
    let num_pages = TableSource::num_pages(&disk);
    assert!(num_pages > 20, "need a multi-page table, got {num_pages}");

    for f in [0.02, 0.1, 0.5] {
        let counting = CountingSource::new(&disk);
        let est = SampleCf::new(SamplerKind::Block(f))
            .seed(5)
            .estimate(&counting, &spec, &NullSuppression)
            .unwrap();
        assert!(est.cf > 0.0);
        let expected = ((num_pages as f64 * f).round() as u64).max(1);
        assert_eq!(
            counting.pages_read(),
            expected,
            "block sampling at f = {f} must read round(f x {num_pages}) pages"
        );
    }

    // The exact computation, by contrast, reads every page.
    let counting = CountingSource::new(&disk);
    ExactCf::new()
        .compute(&counting, &spec, &NullSuppression)
        .unwrap();
    assert_eq!(counting.pages_read(), num_pages as u64);
}

#[test]
fn shared_sample_advisor_reads_sampled_pages_exactly_once_on_disk() {
    // The acceptance test for the batch advisor: k candidates sharing one
    // (sampler, fraction, seed) group over a disk-backed table cost
    // round(f · num_pages) physical page reads *in total*, not per
    // candidate — and the recommendations are byte-identical to the serial
    // single-threaded path.
    let mem = demo_table(24_000, 800, 31);
    let file = TempTableFile::new("advisor_shared");
    let disk = DiskTable::materialize(&file.0, &mem).unwrap();
    let num_pages = TableSource::num_pages(&disk);
    assert!(num_pages > 20, "need a multi-page table, got {num_pages}");
    let disk = disk.into_shared();

    let fraction = 0.05;
    let specs = [
        IndexSpec::nonclustered("by_a", ["a"]).unwrap(),
        IndexSpec::clustered("cl_a", ["a"]).unwrap(),
    ];
    let schemes: Vec<Box<dyn CompressionScheme>> = ["null-suppression", "dictionary-global", "rle"]
        .iter()
        .map(|n| scheme_by_name(n).unwrap())
        .collect();
    // k = 6 candidates: every (spec × scheme) pair, all in one group.
    fn candidates_for<'a>(
        source: &SharedSource,
        specs: &'a [IndexSpec],
        schemes: &'a [Box<dyn CompressionScheme>],
    ) -> Vec<Candidate<'a>> {
        specs
            .iter()
            .flat_map(|spec| {
                schemes
                    .iter()
                    .map(move |scheme| Candidate::new(source, spec, scheme.as_ref()))
            })
            .collect()
    }
    let candidates = candidates_for(&disk, &specs, &schemes);
    assert_eq!(candidates.len(), 6);

    let config = AdvisorConfig {
        sampler: SamplerKind::Block(fraction),
        seed: 9,
        ..Default::default()
    };
    let counting = std::sync::Arc::new(SharedCountingSource::new(disk.clone()));
    let counted: SharedSource = std::sync::Arc::clone(&counting) as SharedSource;
    let counted_candidates = candidates_for(&counted, &specs, &schemes);
    let plan = CompressionAdvisor::new(config)
        .unwrap()
        .plan(&counted_candidates)
        .unwrap();

    // One group, one sample, round(f·N) pages — once, total.
    let expected_pages = ((num_pages as f64 * fraction).round() as u64).max(1);
    assert_eq!(counting.pages_read(), expected_pages);
    assert_eq!(plan.samples_drawn(), 1);
    assert_eq!(plan.pages_read(), expected_pages);
    assert_eq!(plan.groups[0].candidates, 6);
    // The naive baseline would have paid that six times over.
    assert_eq!(plan.naive_pages_read(), expected_pages * 6);

    // Byte-identical to the serial single-threaded path, and to running the
    // plan straight over the un-counted disk table.
    for threads in [1, 4] {
        let serial = CompressionAdvisor::new(AdvisorConfig { threads, ..config })
            .unwrap()
            .plan(&candidates)
            .unwrap();
        assert_eq!(serial.recommendations, plan.recommendations);
    }

    // And each shared estimate equals a direct estimator run with the same
    // sampler and seed.
    for (c, r) in candidates.iter().zip(&plan.recommendations) {
        let direct = SampleCf::new(config.sampler)
            .seed(config.seed)
            .estimate(&disk, c.spec, c.scheme)
            .unwrap();
        assert_eq!(r.estimated_cf, direct.cf, "{}/{}", r.index, r.scheme);
        assert_eq!(r.sample_rows, direct.data.rows);
    }
}

#[test]
fn trial_runner_parallelism_is_deterministic_over_disk_tables() {
    let mem = demo_table(6_000, 300, 23);
    let file = TempTableFile::new("trials");
    let disk = DiskTable::materialize(&file.0, &mem).unwrap();
    let spec = IndexSpec::nonclustered("i", ["a"]).unwrap();

    let single = TrialRunner::new(TrialConfig::new(8).base_seed(3).threads(1))
        .run_estimates(
            &disk,
            &spec,
            &NullSuppression,
            SamplerKind::UniformWithReplacement(0.05),
        )
        .unwrap();
    let multi = TrialRunner::new(TrialConfig::new(8).base_seed(3).threads(4))
        .run_estimates(
            &disk,
            &spec,
            &NullSuppression,
            SamplerKind::UniformWithReplacement(0.05),
        )
        .unwrap();
    assert_eq!(single, multi, "thread count must not change disk results");

    // And the disk trials equal the in-memory trials seed-for-seed.
    let in_memory = TrialRunner::new(TrialConfig::new(8).base_seed(3))
        .run_estimates(
            &mem,
            &spec,
            &NullSuppression,
            SamplerKind::UniformWithReplacement(0.05),
        )
        .unwrap();
    assert_eq!(single, in_memory);
}
