//! The [`RowSampler`] trait and shared helpers.

use crate::error::{SamplingError, SamplingResult};
use rand::RngCore;
use samplecf_storage::{Rid, Row, TableSource};

/// A sampled row: its identifier in the base table plus the row itself.
pub type SampledRow = (Rid, Row);

/// A procedure for drawing a random sample of rows from a table source.
///
/// Samplers are deterministic given the RNG they are handed, which is what
/// makes the estimator's trial runner reproducible.  They draw through the
/// [`TableSource`] abstraction, so the same sampler runs over an in-memory
/// [`Table`](samplecf_storage::Table) or a file-backed
/// [`DiskTable`](samplecf_storage::DiskTable) — in the latter case touching
/// only the pages it actually needs.
pub trait RowSampler: Send + Sync {
    /// Short stable name (used in experiment reports).
    fn name(&self) -> &'static str;

    /// Draw a sample from the source.
    ///
    /// Duplicates are allowed (and expected for with-replacement samplers);
    /// the SampleCF estimator treats the result as a bag of rows.
    fn sample(
        &self,
        source: &dyn TableSource,
        rng: &mut dyn RngCore,
    ) -> SamplingResult<Vec<SampledRow>>;

    /// Expected number of sampled rows for a table of `n` rows.
    fn expected_sample_size(&self, n: usize) -> usize;
}

impl std::fmt::Debug for dyn RowSampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RowSampler({})", self.name())
    }
}

/// Validate a sampling fraction, which must lie in (0, 1].
pub fn validate_fraction(fraction: f64) -> SamplingResult<f64> {
    if !(fraction > 0.0 && fraction <= 1.0 && fraction.is_finite()) {
        return Err(SamplingError::InvalidFraction(format!(
            "fraction must be in (0, 1], got {fraction}"
        )));
    }
    Ok(fraction)
}

/// The sample size `r = max(1, round(f·n))` used by fraction-based samplers:
/// at least one row whenever the table is non-empty, exactly `n` at
/// `fraction == 1.0`, and zero for an empty table.
#[must_use]
pub fn target_size(n: usize, fraction: f64) -> usize {
    if n == 0 {
        0
    } else {
        ((n as f64 * fraction).round() as usize).clamp(1, n)
    }
}

/// The page count `max(1, round(f·num_pages))` used by page-level samplers.
///
/// Same edge behaviour as [`target_size`], in page units: zero pages for an
/// empty table, at least one otherwise, all of them at `fraction == 1.0`.
#[must_use]
pub fn target_page_count(num_pages: usize, fraction: f64) -> usize {
    target_size(num_pages, fraction)
}

/// Fetch the rows at the given positions of the source's RID frame.
///
/// Each fetch goes through [`TableSource::get`], which for disk-backed
/// sources reads the row's containing page — the real cost of scattered row
/// retrieval the paper's I/O argument (Section II-C) is about.
pub fn fetch_positions(
    source: &dyn TableSource,
    rids: &[Rid],
    positions: &[usize],
) -> SamplingResult<Vec<SampledRow>> {
    positions
        .iter()
        .map(|&p| {
            let rid = rids[p];
            Ok((rid, source.get(rid)?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_validation() {
        assert!(validate_fraction(0.01).is_ok());
        assert!(validate_fraction(1.0).is_ok());
        assert!(validate_fraction(0.0).is_err());
        assert!(validate_fraction(-0.5).is_err());
        assert!(validate_fraction(1.5).is_err());
        assert!(validate_fraction(f64::NAN).is_err());
    }

    #[test]
    fn target_size_rounds_and_clamps() {
        assert_eq!(target_size(1000, 0.01), 10);
        assert_eq!(target_size(1000, 0.0004), 1);
        assert_eq!(target_size(1000, 1.0), 1000);
        assert_eq!(target_size(0, 0.5), 0);
        assert_eq!(target_size(3, 0.99), 3);
    }

    #[test]
    fn target_page_count_mirrors_target_size() {
        // The unified edge behaviour: empty → 0, tiny fraction → 1,
        // fraction 1.0 → everything.
        assert_eq!(target_page_count(0, 0.5), 0);
        assert_eq!(target_page_count(0, 1.0), 0);
        assert_eq!(target_page_count(40, 0.0001), 1);
        assert_eq!(target_page_count(40, 1.0), 40);
        assert_eq!(target_page_count(40, 0.25), 10);
    }
}
