//! `samplecfd` — the SampleCF estimation daemon.
//!
//! A std-only event-driven TCP server speaking the line-delimited JSON
//! protocol specified in `docs/API.md` (`register`, `estimate`,
//! `estimate_progressive`, `advise`, `info`, `stats`, `metrics`,
//! `shutdown`), backed
//! by a sharded table catalog and a sharded, evicting sample cache so
//! concurrent clients reuse one sample per (table, sampler, fraction,
//! seed) group.  Connections are owned by a nonblocking readiness loop —
//! thousands of idle clients cost file descriptors, not threads — and
//! estimation work runs on a bounded worker pool with explicit `busy`
//! backpressure.
//!
//! Talk to it with `samplecf client <addr> <request-json>` or any
//! newline-framed TCP client.

use samplecf_server::{Server, ServerConfig};
use std::process::ExitCode;

const HELP: &str = "samplecfd — the SampleCF estimation daemon

USAGE:
  samplecfd [options]

OPTIONS:
  --addr ADDR            listen address                 [default: 127.0.0.1:7878]
                         (use port 0 for an ephemeral port; the bound
                         address is printed on the first stdout line)
  --workers N            estimation worker threads      [default: 8]
                         (compute pool only; connection capacity is
                         --max-connections)
  --estimator-threads N  default inner parallelism of one request
                         (0 = all cores; a request's \"threads\" field
                         overrides it).  Keep workers x this near the
                         core count                     [default: 1]
  --max-connections N    open-connection limit; further connects are
                         answered busy and closed      [default: 10240]
  --queue-depth N        bounded request queue between the event loop
                         and the workers; requests finding it full are
                         answered busy                 [default: 1024]
  --cache-budget BYTES   sample-cache byte budget before LRU eviction
                                                       [default: 268435456]
  --cache-shards N       sample-cache shard count (the budget divides
                         evenly across shards)         [default: 8]
  --slow-request-ms MS   requests slower than this are counted in
                         samplecf_slow_requests_total and logged as one
                         structured JSON line on stderr (0 disables the
                         log)                          [default: 1000]
  --table FILE           pre-register a table file (repeatable)

PROTOCOL (one JSON object per line over TCP; see docs/API.md):
  {\"op\":\"register\",\"path\":\"/data/t.scf\"}
  {\"op\":\"estimate\",\"table\":\"t\",\"sampler\":\"block\",\"fraction\":0.05,
   \"scheme\":\"dictionary-global\",\"seed\":1}
  {\"op\":\"stats\"}
  {\"op\":\"metrics\"}    (Prometheus-style text exposition in \"exposition\")
  {\"op\":\"shutdown\"}

Watch a running daemon live with `samplecf top <addr>`.

Estimates are byte-identical to `samplecf estimate` seed-for-seed; every
response reports pages_read and how the shared sample cache served it.";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("samplecfd: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServerConfig::default();
    let mut tables: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("flag {name} expects a value"))
        };
        let parse = |name: &str, raw: String| {
            raw.parse::<usize>()
                .map_err(|e| format!("invalid {name}: {e}"))
        };
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{HELP}");
                return Ok(());
            }
            "--addr" => addr = value("--addr")?,
            "--workers" => config.workers = parse("--workers", value("--workers")?)?,
            "--estimator-threads" => {
                config.estimator_threads =
                    parse("--estimator-threads", value("--estimator-threads")?)?;
            }
            "--max-connections" => {
                config.max_connections = parse("--max-connections", value("--max-connections")?)?;
            }
            "--queue-depth" => {
                config.queue_depth = parse("--queue-depth", value("--queue-depth")?)?;
            }
            "--cache-budget" => {
                config.cache_budget_bytes = parse("--cache-budget", value("--cache-budget")?)?;
            }
            "--cache-shards" => {
                config.cache_shards = parse("--cache-shards", value("--cache-shards")?)?;
            }
            "--slow-request-ms" => {
                config.slow_request_ms = value("--slow-request-ms")?
                    .parse::<u64>()
                    .map_err(|e| format!("invalid --slow-request-ms: {e}"))?;
            }
            "--table" => tables.push(value("--table")?),
            other => return Err(format!("unrecognised argument {other:?} (see --help)")),
        }
    }

    let handle = Server::bind(&addr, config).map_err(|e| format!("cannot bind {addr}: {e}"))?;

    // The first line is machine-parseable: scripts (and the CI smoke test)
    // bind port 0 and scrape the real address from here.
    println!("samplecfd listening on {}", handle.addr());
    println!("workers          {}", config.workers);
    println!("estimator thr.   {}", config.estimator_threads);
    println!("max connections  {}", config.max_connections);
    println!("queue depth      {}", config.queue_depth);
    println!(
        "cache budget     {} B across {} shards",
        config.cache_budget_bytes, config.cache_shards
    );
    for path in &tables {
        let entry = handle
            .state()
            .catalog
            .register(path, None)
            .map_err(|e| format!("--table {path}: {e}"))?;
        println!(
            "registered       {} ({path})",
            samplecf_storage::TableSource::name(entry.table.as_ref())
        );
    }

    handle.run();
    println!("samplecfd: shutdown complete");
    Ok(())
}
