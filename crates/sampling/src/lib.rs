//! # samplecf-sampling
//!
//! Sampling procedures for the SampleCF reproduction.
//!
//! The paper's estimator assumes **uniform row sampling with replacement**
//! ([`UniformWithReplacement`]); commercial systems typically use
//! **block-level sampling** ([`BlockSampler`]), which the paper leaves to
//! future work.  Both — plus without-replacement, Bernoulli, systematic and
//! reservoir variants — are provided behind the [`RowSampler`] trait so the
//! estimator and the benchmark harness can swap them freely.

pub mod block;
pub mod error;
pub mod kind;
pub mod reservoir;
pub mod sampler;
pub mod uniform;

pub use block::BlockSampler;
pub use error::{SamplingError, SamplingResult};
pub use kind::SamplerKind;
pub use reservoir::ReservoirSampler;
pub use sampler::{target_size, validate_fraction, RowSampler, SampledRow};
pub use uniform::{
    BernoulliSampler, SystematicSampler, UniformWithReplacement, UniformWithoutReplacement,
};
