//! Column generator specifications.

use crate::distribution::{FrequencyDistribution, FrequencySampler, LengthDistribution};
use crate::error::{DatagenError, DatagenResult};
use crate::pool::ValuePool;
use rand::Rng;
use rand::RngCore;
use samplecf_storage::{Column, DataType, Value};

/// Specification of one generated column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSpec {
    /// A `char(k)` column drawing from a pool of `distinct` values.
    Char {
        /// Column name.
        name: String,
        /// Declared width `k`.
        width: u16,
        /// Number of distinct values `d`.
        distinct: usize,
        /// Distribution of null-suppressed value lengths.
        length: LengthDistribution,
        /// Distribution of value frequencies.
        frequency: FrequencyDistribution,
        /// Fraction of rows that are NULL (0 disables nullability).
        null_fraction: f64,
    },
    /// A `bigint` column drawing uniformly from `distinct` values with the
    /// given frequency skew.
    Int {
        /// Column name.
        name: String,
        /// Number of distinct values.
        distinct: usize,
        /// Distribution of value frequencies.
        frequency: FrequencyDistribution,
    },
    /// A `bigint` column holding the row number (a unique key).
    SequentialInt {
        /// Column name.
        name: String,
    },
}

impl ColumnSpec {
    /// Convenience constructor for the paper's canonical `char(k)` column with
    /// uniform frequencies and a fixed value length.
    pub fn char_uniform(
        name: impl Into<String>,
        width: u16,
        distinct: usize,
        value_len: usize,
    ) -> Self {
        ColumnSpec::Char {
            name: name.into(),
            width,
            distinct,
            length: LengthDistribution::Constant(value_len),
            frequency: FrequencyDistribution::Uniform,
            null_fraction: 0.0,
        }
    }

    /// The column name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            ColumnSpec::Char { name, .. }
            | ColumnSpec::Int { name, .. }
            | ColumnSpec::SequentialInt { name } => name,
        }
    }

    /// The schema column this spec generates.
    #[must_use]
    pub fn schema_column(&self) -> Column {
        match self {
            ColumnSpec::Char {
                name,
                width,
                null_fraction,
                ..
            } => {
                if *null_fraction > 0.0 {
                    Column::nullable(name.clone(), DataType::Char(*width))
                } else {
                    Column::new(name.clone(), DataType::Char(*width))
                }
            }
            ColumnSpec::Int { name, .. } | ColumnSpec::SequentialInt { name } => {
                Column::new(name.clone(), DataType::Int64)
            }
        }
    }

    /// Build the runtime generator for this column.
    pub fn build(&self, rng: &mut dyn RngCore) -> DatagenResult<ColumnGenerator> {
        match self {
            ColumnSpec::Char {
                width,
                distinct,
                length,
                frequency,
                null_fraction,
                ..
            } => {
                if !(0.0..1.0).contains(null_fraction) {
                    return Err(DatagenError::InvalidSpec(format!(
                        "null fraction must be in [0, 1), got {null_fraction}"
                    )));
                }
                let pool = ValuePool::generate(*distinct, *width as usize, length, rng)?;
                let sampler = frequency.build_sampler(*distinct)?;
                Ok(ColumnGenerator::Char {
                    pool,
                    sampler,
                    null_fraction: *null_fraction,
                })
            }
            ColumnSpec::Int {
                distinct,
                frequency,
                ..
            } => {
                let sampler = frequency.build_sampler(*distinct)?;
                Ok(ColumnGenerator::Int { sampler })
            }
            ColumnSpec::SequentialInt { .. } => Ok(ColumnGenerator::Sequential { next: 0 }),
        }
    }
}

/// A runtime value generator for one column.
#[derive(Debug, Clone)]
pub enum ColumnGenerator {
    /// Draws from a pool of distinct strings.
    Char {
        /// The distinct values.
        pool: ValuePool,
        /// Frequency sampler over pool indexes.
        sampler: FrequencySampler,
        /// Probability of generating NULL.
        null_fraction: f64,
    },
    /// Draws integer values `0..distinct` under a frequency distribution.
    Int {
        /// Frequency sampler over the integer domain.
        sampler: FrequencySampler,
    },
    /// Emits 0, 1, 2, ...
    Sequential {
        /// Next value to emit.
        next: i64,
    },
}

impl ColumnGenerator {
    /// Generate the value for the next row.
    pub fn next_value(&mut self, rng: &mut dyn RngCore) -> Value {
        match self {
            ColumnGenerator::Char {
                pool,
                sampler,
                null_fraction,
            } => {
                if *null_fraction > 0.0 && rng.gen::<f64>() < *null_fraction {
                    Value::Null
                } else {
                    Value::Str(pool.value(sampler.sample(rng)).to_string())
                }
            }
            ColumnGenerator::Int { sampler } => Value::Int(sampler.sample(rng) as i64),
            ColumnGenerator::Sequential { next } => {
                let v = *next;
                *next += 1;
                Value::Int(v)
            }
        }
    }

    /// The number of distinct non-null values this generator can produce,
    /// if bounded (sequential columns are unbounded).
    #[must_use]
    pub fn domain_size(&self) -> Option<usize> {
        match self {
            ColumnGenerator::Char { pool, .. } => Some(pool.len()),
            ColumnGenerator::Int { sampler } => Some(sampler.domain_size()),
            ColumnGenerator::Sequential { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn char_column_generates_values_from_its_pool() {
        let spec = ColumnSpec::char_uniform("a", 16, 20, 8);
        let mut r = rng(1);
        let mut gen = spec.build(&mut r).unwrap();
        assert_eq!(gen.domain_size(), Some(20));
        let mut seen = HashSet::new();
        for _ in 0..2000 {
            let v = gen.next_value(&mut r);
            let s = v.as_str().unwrap().to_string();
            assert!(s.len() <= 16);
            seen.insert(s);
        }
        assert_eq!(seen.len(), 20, "all pool values should eventually appear");
    }

    #[test]
    fn null_fraction_produces_nulls() {
        let spec = ColumnSpec::Char {
            name: "a".into(),
            width: 10,
            distinct: 5,
            length: LengthDistribution::Constant(4),
            frequency: FrequencyDistribution::Uniform,
            null_fraction: 0.3,
        };
        assert!(spec.schema_column().nullable);
        let mut r = rng(2);
        let mut gen = spec.build(&mut r).unwrap();
        let nulls = (0..5000)
            .filter(|_| gen.next_value(&mut r).is_null())
            .count();
        assert!((1200..1800).contains(&nulls), "nulls = {nulls}");
    }

    #[test]
    fn invalid_null_fraction_rejected() {
        let spec = ColumnSpec::Char {
            name: "a".into(),
            width: 10,
            distinct: 5,
            length: LengthDistribution::Constant(4),
            frequency: FrequencyDistribution::Uniform,
            null_fraction: 1.5,
        };
        assert!(spec.build(&mut rng(3)).is_err());
    }

    #[test]
    fn int_and_sequential_columns() {
        let mut r = rng(4);
        let mut int_gen = ColumnSpec::Int {
            name: "i".into(),
            distinct: 7,
            frequency: FrequencyDistribution::Uniform,
        }
        .build(&mut r)
        .unwrap();
        for _ in 0..100 {
            let v = int_gen.next_value(&mut r).as_int().unwrap();
            assert!((0..7).contains(&v));
        }
        let mut seq = ColumnSpec::SequentialInt { name: "s".into() }
            .build(&mut r)
            .unwrap();
        assert_eq!(seq.domain_size(), None);
        assert_eq!(seq.next_value(&mut r), Value::Int(0));
        assert_eq!(seq.next_value(&mut r), Value::Int(1));
        assert_eq!(seq.next_value(&mut r), Value::Int(2));
    }

    #[test]
    fn schema_columns_have_expected_types() {
        assert_eq!(
            ColumnSpec::char_uniform("a", 12, 3, 4)
                .schema_column()
                .datatype,
            DataType::Char(12)
        );
        assert_eq!(
            ColumnSpec::SequentialInt { name: "id".into() }
                .schema_column()
                .datatype,
            DataType::Int64
        );
    }
}
