//! Slotted pages.
//!
//! A [`Page`] is a fixed-size byte buffer with the classical slotted layout
//! used by disk-based engines: a small header, records growing forward from
//! the header, and a slot directory growing backward from the end of the
//! page.  The per-page overheads (header plus one slot entry per record) are
//! part of what the compression fraction measures, so they are modelled
//! explicitly rather than abstracted away.
//!
//! Layout of the backing buffer:
//!
//! ```text
//! +--------------+-------------------------+-----------+------------------+
//! | header (16B) | record 0 | record 1 ... |   free    | ... slot1 slot0  |
//! +--------------+-------------------------+-----------+------------------+
//! ```
//!
//! Each slot entry is 4 bytes: a 2-byte record offset and a 2-byte record
//! length.

use crate::cell::RowRef;
use crate::error::{StorageError, StorageResult};
use crate::rid::PageId;
use crate::row::RowCodec;

/// Default page size used throughout the library (8 KiB, as in SQL Server).
pub const DEFAULT_PAGE_SIZE: usize = 8192;

/// Fixed page header size in bytes.
pub const PAGE_HEADER_SIZE: usize = 16;

/// Size of one slot directory entry in bytes.
pub const SLOT_SIZE: usize = 4;

/// Smallest supported page size.
pub const MIN_PAGE_SIZE: usize = 64;

/// Largest supported page size (offsets are 16-bit).
pub const MAX_PAGE_SIZE: usize = 32 * 1024;

/// Validate a page size, returning it if acceptable.
pub fn validate_page_size(page_size: usize) -> StorageResult<usize> {
    if !(MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&page_size) {
        return Err(StorageError::PageCorruption(format!(
            "page size {page_size} outside supported range [{MIN_PAGE_SIZE}, {MAX_PAGE_SIZE}]"
        )));
    }
    Ok(page_size)
}

/// Maximum record payload a page of `page_size` bytes can hold.
#[must_use]
pub fn max_record_len(page_size: usize) -> usize {
    page_size.saturating_sub(PAGE_HEADER_SIZE + SLOT_SIZE)
}

/// A slotted page holding variable-length records.
#[derive(Debug, Clone)]
pub struct Page {
    id: PageId,
    data: Vec<u8>,
}

impl Page {
    /// Create an empty page with the given id and size.
    ///
    /// # Errors
    /// Fails if `page_size` is outside the supported range.
    pub fn new(id: PageId, page_size: usize) -> StorageResult<Self> {
        validate_page_size(page_size)?;
        let mut page = Page {
            id,
            data: vec![0u8; page_size],
        };
        page.write_header(0, PAGE_HEADER_SIZE as u32);
        page.data[..4].copy_from_slice(&id.to_be_bytes());
        Ok(page)
    }

    /// Reconstruct a page from its raw backing bytes (as produced by
    /// [`Page::raw`]), validating every structural invariant so that corrupt
    /// or truncated buffers are rejected instead of causing panics later.
    ///
    /// # Errors
    /// Fails if the buffer size is unsupported, the stored page id does not
    /// match `expected_id`, or the slot directory is inconsistent.
    pub fn from_bytes(expected_id: PageId, data: Vec<u8>) -> StorageResult<Self> {
        validate_page_size(data.len())?;
        let stored_id = PageId::from_be_bytes([data[0], data[1], data[2], data[3]]);
        if stored_id != expected_id {
            return Err(StorageError::PageCorruption(format!(
                "page header stores id {stored_id}, expected {expected_id}"
            )));
        }
        let page = Page {
            id: stored_id,
            data,
        };
        let free_ptr = page.free_ptr();
        let dir_start = page
            .page_size()
            .checked_sub(usize::from(page.slot_count()) * SLOT_SIZE)
            .ok_or_else(|| {
                StorageError::PageCorruption(format!(
                    "slot directory of {} entries exceeds the page",
                    page.slot_count()
                ))
            })?;
        if free_ptr < PAGE_HEADER_SIZE || free_ptr > dir_start {
            return Err(StorageError::PageCorruption(format!(
                "free pointer {free_ptr} outside the valid range [{PAGE_HEADER_SIZE}, {dir_start}]"
            )));
        }
        for slot in 0..page.slot_count() {
            let (offset, len) = page.slot(slot).expect("slot below slot_count");
            if offset < PAGE_HEADER_SIZE || offset + len > free_ptr {
                return Err(StorageError::PageCorruption(format!(
                    "slot {slot} spans [{offset}, {}) outside the record area",
                    offset + len
                )));
            }
        }
        Ok(page)
    }

    fn write_header(&mut self, slot_count: u16, free_ptr: u32) {
        self.data[4..6].copy_from_slice(&slot_count.to_be_bytes());
        self.data[8..12].copy_from_slice(&free_ptr.to_be_bytes());
    }

    /// The page identifier.
    #[must_use]
    pub fn id(&self) -> PageId {
        self.id
    }

    /// Total size of the page in bytes.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.data.len()
    }

    /// Number of records stored in the page.
    #[must_use]
    pub fn slot_count(&self) -> u16 {
        u16::from_be_bytes([self.data[4], self.data[5]])
    }

    fn free_ptr(&self) -> usize {
        u32::from_be_bytes([self.data[8], self.data[9], self.data[10], self.data[11]]) as usize
    }

    fn slot_dir_start(&self) -> usize {
        self.page_size() - usize::from(self.slot_count()) * SLOT_SIZE
    }

    /// Bytes still available for a new record (including its slot entry).
    #[must_use]
    pub fn free_space(&self) -> usize {
        self.slot_dir_start().saturating_sub(self.free_ptr())
    }

    /// Whether a record of `record_len` bytes fits in this page.
    #[must_use]
    pub fn fits(&self, record_len: usize) -> bool {
        self.free_space() >= record_len + SLOT_SIZE
    }

    /// Number of payload bytes currently stored (sum of record lengths).
    #[must_use]
    pub fn payload_bytes(&self) -> usize {
        (0..self.slot_count())
            .map(|s| self.slot(s).map_or(0, |(_, len)| len))
            .sum()
    }

    /// Bytes of the page that are pure bookkeeping overhead
    /// (header + slot directory).
    #[must_use]
    pub fn overhead_bytes(&self) -> usize {
        PAGE_HEADER_SIZE + usize::from(self.slot_count()) * SLOT_SIZE
    }

    fn slot(&self, slot: u16) -> Option<(usize, usize)> {
        if slot >= self.slot_count() {
            return None;
        }
        let pos = self.page_size() - (usize::from(slot) + 1) * SLOT_SIZE;
        let offset = u16::from_be_bytes([self.data[pos], self.data[pos + 1]]) as usize;
        let len = u16::from_be_bytes([self.data[pos + 2], self.data[pos + 3]]) as usize;
        Some((offset, len))
    }

    /// Insert a record, returning its slot number, or `None` if it does not fit.
    ///
    /// # Errors
    /// Fails if the record can never fit in a page of this size.
    pub fn insert(&mut self, record: &[u8]) -> StorageResult<Option<u16>> {
        if record.len() > max_record_len(self.page_size()) {
            return Err(StorageError::RecordTooLarge {
                record_len: record.len(),
                max_payload: max_record_len(self.page_size()),
            });
        }
        if !self.fits(record.len()) {
            return Ok(None);
        }
        let slot = self.slot_count();
        let offset = self.free_ptr();
        self.data[offset..offset + record.len()].copy_from_slice(record);
        let pos = self.page_size() - (usize::from(slot) + 1) * SLOT_SIZE;
        self.data[pos..pos + 2].copy_from_slice(&(offset as u16).to_be_bytes());
        self.data[pos + 2..pos + 4].copy_from_slice(&(record.len() as u16).to_be_bytes());
        self.write_header(slot + 1, (offset + record.len()) as u32);
        Ok(Some(slot))
    }

    /// Get the record stored in `slot`.
    pub fn get(&self, slot: u16) -> StorageResult<&[u8]> {
        let (offset, len) = self.slot(slot).ok_or(StorageError::InvalidRid {
            page: self.id,
            slot,
        })?;
        if offset + len > self.page_size() {
            return Err(StorageError::PageCorruption(format!(
                "slot {slot} points outside the page"
            )));
        }
        Ok(&self.data[offset..offset + len])
    }

    /// Iterate over all records in slot order.
    pub fn records(&self) -> impl Iterator<Item = &[u8]> + '_ {
        (0..self.slot_count()).map(move |s| self.get(s).expect("slot within slot_count is valid"))
    }

    /// Borrow the record in `slot` as a [`RowRef`] — a zero-copy view whose
    /// cells are subslices of this page's buffer.
    ///
    /// # Errors
    /// Fails if the slot does not exist or the record length does not match
    /// the codec's fixed record size.
    pub fn row_ref<'a>(&'a self, slot: u16, codec: &'a RowCodec) -> StorageResult<RowRef<'a>> {
        RowRef::new(codec, self.get(slot)?)
    }

    /// Iterate over every record in slot order as borrowed [`RowRef`]s.
    ///
    /// # Errors
    /// Fails if any record's length does not match the codec's record size.
    pub fn row_refs<'a>(&'a self, codec: &'a RowCodec) -> StorageResult<Vec<RowRef<'a>>> {
        (0..self.slot_count())
            .map(|slot| self.row_ref(slot, codec))
            .collect()
    }

    /// Borrow the raw backing bytes of the page.
    #[must_use]
    pub fn raw(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_page_is_empty() {
        let p = Page::new(7, DEFAULT_PAGE_SIZE).unwrap();
        assert_eq!(p.id(), 7);
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.payload_bytes(), 0);
        assert_eq!(p.overhead_bytes(), PAGE_HEADER_SIZE);
        assert_eq!(p.free_space(), DEFAULT_PAGE_SIZE - PAGE_HEADER_SIZE);
    }

    #[test]
    fn rejects_bad_page_sizes() {
        assert!(Page::new(0, 16).is_err());
        assert!(Page::new(0, MAX_PAGE_SIZE + 1).is_err());
        assert!(Page::new(0, MIN_PAGE_SIZE).is_ok());
    }

    #[test]
    fn insert_and_get_roundtrip() {
        let mut p = Page::new(0, 256).unwrap();
        let s0 = p.insert(b"hello").unwrap().unwrap();
        let s1 = p.insert(b"world!").unwrap().unwrap();
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert_eq!(p.get(0).unwrap(), b"hello");
        assert_eq!(p.get(1).unwrap(), b"world!");
        assert_eq!(p.slot_count(), 2);
        assert_eq!(p.payload_bytes(), 11);
        assert!(p.get(2).is_err());
    }

    #[test]
    fn insert_returns_none_when_full() {
        let mut p = Page::new(0, MIN_PAGE_SIZE).unwrap();
        let rec = vec![0xAB; 20];
        let mut inserted = 0;
        while p.insert(&rec).unwrap().is_some() {
            inserted += 1;
        }
        assert!(inserted >= 1);
        // The page reports no space for a further record.
        assert!(!p.fits(rec.len()));
        // Existing records unaffected.
        assert_eq!(p.get(0).unwrap(), rec.as_slice());
    }

    #[test]
    fn oversized_record_is_an_error() {
        let mut p = Page::new(0, 128).unwrap();
        assert!(matches!(
            p.insert(&vec![0u8; 1000]),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn accounting_adds_up() {
        let mut p = Page::new(0, 512).unwrap();
        for i in 0..10 {
            p.insert(&[i as u8; 17]).unwrap().unwrap();
        }
        assert_eq!(p.payload_bytes(), 170);
        assert_eq!(p.overhead_bytes(), PAGE_HEADER_SIZE + 10 * SLOT_SIZE);
        assert_eq!(
            p.free_space(),
            512 - PAGE_HEADER_SIZE - 170 - 10 * SLOT_SIZE
        );
    }

    #[test]
    fn records_iterates_in_slot_order() {
        let mut p = Page::new(0, 256).unwrap();
        p.insert(b"a").unwrap();
        p.insert(b"bb").unwrap();
        p.insert(b"ccc").unwrap();
        let lens: Vec<usize> = p.records().map(<[u8]>::len).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn from_bytes_roundtrips_a_populated_page() {
        let mut p = Page::new(9, 256).unwrap();
        p.insert(b"hello").unwrap();
        p.insert(b"world").unwrap();
        let restored = Page::from_bytes(9, p.raw().to_vec()).unwrap();
        assert_eq!(restored.id(), 9);
        assert_eq!(restored.slot_count(), 2);
        assert_eq!(restored.get(0).unwrap(), b"hello");
        assert_eq!(restored.get(1).unwrap(), b"world");
    }

    #[test]
    fn from_bytes_rejects_structural_corruption() {
        let mut p = Page::new(3, 128).unwrap();
        p.insert(b"abc").unwrap();
        // Wrong expected id.
        assert!(Page::from_bytes(4, p.raw().to_vec()).is_err());
        // Slot count pointing past the page.
        let mut data = p.raw().to_vec();
        data[4] = 0xFF;
        data[5] = 0xFF;
        assert!(Page::from_bytes(3, data).is_err());
        // Free pointer below the header.
        let mut data = p.raw().to_vec();
        data[8..12].copy_from_slice(&2u32.to_be_bytes());
        assert!(Page::from_bytes(3, data).is_err());
        // Unsupported buffer size.
        assert!(Page::from_bytes(3, vec![0u8; 8]).is_err());
    }

    #[test]
    fn empty_records_are_allowed() {
        let mut p = Page::new(0, 128).unwrap();
        let s = p.insert(b"").unwrap().unwrap();
        assert_eq!(p.get(s).unwrap(), b"");
    }

    #[test]
    fn row_refs_borrow_records_in_place() {
        use crate::datatype::DataType;
        use crate::row::Row;
        use crate::schema::{Column, Schema};
        use crate::value::Value;

        let codec = RowCodec::new(
            Schema::new(vec![
                Column::new("a", DataType::Char(4)),
                Column::nullable("b", DataType::Int32),
            ])
            .unwrap(),
        );
        let rows = vec![
            Row::new(vec![Value::str("x"), Value::int(1)]),
            Row::new(vec![Value::str("yy"), Value::Null]),
        ];
        let mut p = Page::new(0, 256).unwrap();
        for row in &rows {
            p.insert(&codec.encode(row).unwrap()).unwrap().unwrap();
        }
        let refs = p.row_refs(&codec).unwrap();
        assert_eq!(refs.len(), 2);
        for (r, row) in refs.iter().zip(&rows) {
            // Each record view points into the page's own buffer.
            let page_range = p.raw().as_ptr_range();
            assert!(page_range.contains(&r.record().as_ptr()));
            assert_eq!(&r.to_row().unwrap(), row);
        }
        assert!(refs[1].is_null(1));
        // A record whose length disagrees with the codec is rejected.
        let mut bad = Page::new(0, 256).unwrap();
        bad.insert(b"short").unwrap().unwrap();
        assert!(bad.row_ref(0, &codec).is_err());
    }
}
