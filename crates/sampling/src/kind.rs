//! Configuration-friendly sampler selection.

use crate::block::BlockSampler;
use crate::error::SamplingResult;
use crate::reservoir::ReservoirSampler;
use crate::sampler::RowSampler;
use crate::stratified::StratifiedSampler;
use crate::uniform::{
    BernoulliSampler, SystematicSampler, UniformWithReplacement, UniformWithoutReplacement,
};

/// How a stratified sampler splits its row budget across strata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Allocation {
    /// Proportional to stratum size: `k_s ∝ N_s`.  Matches a plain uniform
    /// draw in expectation and needs no variance information.
    Proportional,
    /// Neyman (variance-minimising): `k_s ∝ N_s·σ_s`, where `σ_s` is the
    /// per-stratum standard deviation of the measured statistic.  Until a
    /// consumer feeds variance estimates back
    /// ([`SampleStream::update_stratum_variances`](crate::SampleStream::update_stratum_variances)),
    /// all `σ_s` are treated as equal, which reduces to proportional.
    Neyman,
}

impl Allocation {
    /// The CLI/wire label (`prop` or `neyman`).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Allocation::Proportional => "prop",
            Allocation::Neyman => "neyman",
        }
    }

    /// Parse the CLI/wire label.
    pub fn by_name(name: &str) -> Result<Self, String> {
        match name {
            "prop" | "proportional" => Ok(Allocation::Proportional),
            "neyman" => Ok(Allocation::Neyman),
            other => Err(format!("unknown allocation {other:?} (prop, neyman)")),
        }
    }
}

/// How a stratified sampler partitions the table's pages into strata (see
/// [`Strata`](crate::Strata)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrataMode {
    /// Equal *page* counts per stratum
    /// ([`Strata::equi_width`](crate::Strata::equi_width)) — the canonical
    /// default, derivable from `(num_pages, count)` alone.
    #[default]
    EquiWidth,
    /// Equal *row* counts per stratum with boundaries on page edges
    /// ([`Strata::equi_depth`](crate::Strata::equi_depth)) — equalises the
    /// statistical weight `W_s` on ragged page fills.
    EquiDepth,
}

impl StrataMode {
    /// The CLI/wire label (`equi-width` or `equi-depth`).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            StrataMode::EquiWidth => "equi-width",
            StrataMode::EquiDepth => "equi-depth",
        }
    }

    /// Parse the CLI/wire label.
    pub fn by_name(name: &str) -> Result<Self, String> {
        match name {
            "equi-width" | "width" => Ok(StrataMode::EquiWidth),
            "equi-depth" | "depth" => Ok(StrataMode::EquiDepth),
            other => Err(format!(
                "unknown strata mode {other:?} (equi-width, equi-depth)"
            )),
        }
    }
}

/// An enumeration of the available sampling procedures, parameterised the way
/// an experiment configuration would describe them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplerKind {
    /// Uniform row sampling with replacement at the given fraction
    /// (the paper's assumption).
    UniformWithReplacement(f64),
    /// Uniform row sampling without replacement at the given fraction.
    UniformWithoutReplacement(f64),
    /// Bernoulli sampling with the given inclusion probability.
    Bernoulli(f64),
    /// Systematic sampling at the given fraction.
    Systematic(f64),
    /// Fixed-size reservoir sampling.
    Reservoir(usize),
    /// Page-level sampling at the given page fraction
    /// (what commercial systems actually do).
    Block(f64),
    /// Stratified uniform-with-replacement sampling: the table's pages are
    /// partitioned into `strata` contiguous equi-width ranges and the row
    /// budget `round(fraction·n)` is split across them per `alloc`.
    Stratified {
        /// Total row fraction across all strata.
        fraction: f64,
        /// Number of contiguous page-range strata (clamped to the page
        /// count; `1` degenerates to plain uniform-with-replacement).
        strata: usize,
        /// Per-stratum budget allocation policy.
        alloc: Allocation,
        /// How the page ranges are cut (equi-width or equi-depth).
        mode: StrataMode,
    },
}

impl SamplerKind {
    /// Instantiate the sampler this kind describes.
    pub fn build(&self) -> SamplingResult<Box<dyn RowSampler>> {
        Ok(match *self {
            SamplerKind::UniformWithReplacement(f) => Box::new(UniformWithReplacement::new(f)?),
            SamplerKind::UniformWithoutReplacement(f) => {
                Box::new(UniformWithoutReplacement::new(f)?)
            }
            SamplerKind::Bernoulli(f) => Box::new(BernoulliSampler::new(f)?),
            SamplerKind::Systematic(f) => Box::new(SystematicSampler::new(f)?),
            SamplerKind::Reservoir(size) => Box::new(ReservoirSampler::new(size)?),
            SamplerKind::Block(f) => Box::new(BlockSampler::new(f)?),
            SamplerKind::Stratified {
                fraction,
                strata,
                alloc,
                mode,
            } => Box::new(StratifiedSampler::new(fraction, strata, alloc, mode)?),
        })
    }

    /// A short label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            SamplerKind::UniformWithReplacement(f) => format!("uniform-wr(f={f})"),
            SamplerKind::UniformWithoutReplacement(f) => format!("uniform-wor(f={f})"),
            SamplerKind::Bernoulli(f) => format!("bernoulli(p={f})"),
            SamplerKind::Systematic(f) => format!("systematic(f={f})"),
            SamplerKind::Reservoir(r) => format!("reservoir(r={r})"),
            SamplerKind::Block(f) => format!("block(f={f})"),
            SamplerKind::Stratified {
                fraction,
                strata,
                alloc,
                mode,
            } => match mode {
                // The default mode keeps the historical label so existing
                // cache keys and reports are unchanged.
                StrataMode::EquiWidth => format!(
                    "stratified(f={fraction},k={strata},alloc={})",
                    alloc.label()
                ),
                // Equi-depth must never alias an equi-width label: the
                // server's cache groups samples by this string.
                StrataMode::EquiDepth => format!(
                    "stratified(f={fraction},k={strata},alloc={},mode={})",
                    alloc.label(),
                    mode.label()
                ),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_its_sampler() {
        let cases = [
            (
                SamplerKind::UniformWithReplacement(0.1),
                "uniform-with-replacement",
            ),
            (
                SamplerKind::UniformWithoutReplacement(0.1),
                "uniform-without-replacement",
            ),
            (SamplerKind::Bernoulli(0.1), "bernoulli"),
            (SamplerKind::Systematic(0.1), "systematic"),
            (SamplerKind::Reservoir(10), "reservoir"),
            (SamplerKind::Block(0.1), "block"),
            (
                SamplerKind::Stratified {
                    fraction: 0.1,
                    strata: 4,
                    alloc: Allocation::Proportional,
                    mode: StrataMode::EquiWidth,
                },
                "stratified",
            ),
        ];
        for (kind, expected) in cases {
            assert_eq!(kind.build().unwrap().name(), expected);
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn invalid_parameters_propagate() {
        assert!(SamplerKind::UniformWithReplacement(0.0).build().is_err());
        assert!(SamplerKind::Reservoir(0).build().is_err());
        assert!(SamplerKind::Block(1.5).build().is_err());
        assert!(SamplerKind::Stratified {
            fraction: 0.0,
            strata: 4,
            alloc: Allocation::Neyman,
            mode: StrataMode::EquiWidth,
        }
        .build()
        .is_err());
        assert!(SamplerKind::Stratified {
            fraction: 0.1,
            strata: 0,
            alloc: Allocation::Neyman,
            mode: StrataMode::EquiWidth,
        }
        .build()
        .is_err());
    }

    #[test]
    fn allocation_labels_round_trip() {
        for alloc in [Allocation::Proportional, Allocation::Neyman] {
            assert_eq!(Allocation::by_name(alloc.label()).unwrap(), alloc);
        }
        assert_eq!(
            Allocation::by_name("proportional").unwrap(),
            Allocation::Proportional
        );
        assert!(Allocation::by_name("optimal").is_err());
    }

    #[test]
    fn strata_mode_labels_round_trip() {
        for mode in [StrataMode::EquiWidth, StrataMode::EquiDepth] {
            assert_eq!(StrataMode::by_name(mode.label()).unwrap(), mode);
        }
        assert_eq!(StrataMode::by_name("width").unwrap(), StrataMode::EquiWidth);
        assert_eq!(StrataMode::by_name("depth").unwrap(), StrataMode::EquiDepth);
        assert!(StrataMode::by_name("quantile").is_err());
    }

    #[test]
    fn equi_depth_never_aliases_an_equi_width_label() {
        let width = SamplerKind::Stratified {
            fraction: 0.1,
            strata: 4,
            alloc: Allocation::Proportional,
            mode: StrataMode::EquiWidth,
        };
        let depth = SamplerKind::Stratified {
            fraction: 0.1,
            strata: 4,
            alloc: Allocation::Proportional,
            mode: StrataMode::EquiDepth,
        };
        // The default keeps its historical spelling; equi-depth is distinct,
        // so the server's `(source, label, seed)` cache key cannot collide.
        assert_eq!(width.label(), "stratified(f=0.1,k=4,alloc=prop)");
        assert_eq!(
            depth.label(),
            "stratified(f=0.1,k=4,alloc=prop,mode=equi-depth)"
        );
    }
}
