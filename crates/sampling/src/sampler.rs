//! The [`RowSampler`] trait and shared helpers.

use crate::error::{SamplingError, SamplingResult};
use rand::RngCore;
use samplecf_storage::{Rid, Row, Table};

/// A sampled row: its identifier in the base table plus the row itself.
pub type SampledRow = (Rid, Row);

/// A procedure for drawing a random sample of rows from a table.
///
/// Samplers are deterministic given the RNG they are handed, which is what
/// makes the estimator's trial runner reproducible.
pub trait RowSampler: Send + Sync {
    /// Short stable name (used in experiment reports).
    fn name(&self) -> &'static str;

    /// Draw a sample from the table.
    ///
    /// Duplicates are allowed (and expected for with-replacement samplers);
    /// the SampleCF estimator treats the result as a bag of rows.
    fn sample(&self, table: &Table, rng: &mut dyn RngCore) -> SamplingResult<Vec<SampledRow>>;

    /// Expected number of sampled rows for a table of `n` rows.
    fn expected_sample_size(&self, n: usize) -> usize;
}

impl std::fmt::Debug for dyn RowSampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RowSampler({})", self.name())
    }
}

/// Validate a sampling fraction, which must lie in (0, 1].
pub fn validate_fraction(fraction: f64) -> SamplingResult<f64> {
    if !(fraction > 0.0 && fraction <= 1.0 && fraction.is_finite()) {
        return Err(SamplingError::InvalidFraction(format!(
            "fraction must be in (0, 1], got {fraction}"
        )));
    }
    Ok(fraction)
}

/// The sample size `r = max(1, round(f·n))` used by fraction-based samplers
/// (at least one row whenever the table is non-empty).
#[must_use]
pub fn target_size(n: usize, fraction: f64) -> usize {
    if n == 0 {
        0
    } else {
        ((n as f64 * fraction).round() as usize).clamp(1, n.max(1))
    }
}

/// Fetch the rows at the given positions of the table's RID frame.
pub fn fetch_positions(
    table: &Table,
    rids: &[Rid],
    positions: &[usize],
) -> SamplingResult<Vec<SampledRow>> {
    positions
        .iter()
        .map(|&p| {
            let rid = rids[p];
            Ok((rid, table.get(rid)?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_validation() {
        assert!(validate_fraction(0.01).is_ok());
        assert!(validate_fraction(1.0).is_ok());
        assert!(validate_fraction(0.0).is_err());
        assert!(validate_fraction(-0.5).is_err());
        assert!(validate_fraction(1.5).is_err());
        assert!(validate_fraction(f64::NAN).is_err());
    }

    #[test]
    fn target_size_rounds_and_clamps() {
        assert_eq!(target_size(1000, 0.01), 10);
        assert_eq!(target_size(1000, 0.0004), 1);
        assert_eq!(target_size(1000, 1.0), 1000);
        assert_eq!(target_size(0, 0.5), 0);
        assert_eq!(target_size(3, 0.99), 3);
    }
}
