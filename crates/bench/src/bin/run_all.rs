//! Runs every reproduction experiment in sequence and writes all reports
//! under `results/`.  Pass `--quick` (or set `SAMPLECF_QUICK=1`) to run the
//! reduced-size variants.

use samplecf_bench::experiments;

fn main() {
    let quick = experiments::quick_mode();
    type ExperimentRun = fn(bool) -> samplecf_bench::Report;
    let runs: Vec<(&str, ExperimentRun)> = vec![
        ("table2", experiments::table2::run),
        ("theorem1", experiments::theorem1::run),
        ("ns_fraction_sweep", experiments::ns_fraction_sweep::run),
        ("dc_distinct_sweep", experiments::dc_distinct_sweep::run),
        ("dc_regimes", experiments::dc_regimes::run),
        ("paged_vs_global", experiments::paged_vs_global::run),
        ("block_sampling", experiments::block_sampling::run),
        ("disk_block_io", experiments::disk_block_io::run),
        (
            "progressive_stopping",
            experiments::progressive_stopping::run,
        ),
        ("stratified_stopping", experiments::stratified_stopping::run),
        ("advisor_scaling", experiments::advisor_scaling::run),
        ("server_throughput", experiments::server_throughput::run),
        ("dv_baselines", experiments::dv_baselines::run),
        ("kernels", experiments::kernels::run),
        ("timing", experiments::timing::run),
    ];
    for (name, run) in runs {
        eprintln!("=== running experiment `{name}` (quick = {quick}) ===");
        let started = std::time::Instant::now();
        let report = run(quick);
        let path = report.finish().expect("writing the report succeeds");
        eprintln!(
            "=== `{name}` finished in {:.1}s -> {} ===\n",
            started.elapsed().as_secs_f64(),
            path.display()
        );
    }
}
