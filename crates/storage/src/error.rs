//! Error types for the storage substrate.

use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A value did not match the column's declared data type.
    TypeMismatch {
        /// Column name the value was destined for.
        column: String,
        /// Declared type of the column.
        expected: String,
        /// Description of the offending value.
        found: String,
    },
    /// A fixed-width character value exceeded its declared width.
    ValueTooWide {
        /// Column name.
        column: String,
        /// Declared width in bytes.
        declared: usize,
        /// Actual encoded length in bytes.
        actual: usize,
    },
    /// A row had a different number of cells than the schema has columns.
    ArityMismatch {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of cells in the row.
        found: usize,
    },
    /// A record was too large to ever fit in a page of the configured size.
    RecordTooLarge {
        /// Encoded record length.
        record_len: usize,
        /// Maximum payload a page can hold.
        max_payload: usize,
    },
    /// A page, slot or row identifier did not resolve to a live record.
    InvalidRid {
        /// Page number requested.
        page: u32,
        /// Slot number requested.
        slot: u16,
    },
    /// A referenced column name does not exist in the schema.
    UnknownColumn(String),
    /// The schema was structurally invalid (duplicate names, zero columns, ...).
    InvalidSchema(String),
    /// A page-level invariant was violated (corrupt slot directory, overflow, ...).
    PageCorruption(String),
    /// The requested table does not exist in the catalog.
    UnknownTable(String),
    /// A table with the same name is already registered in the catalog.
    DuplicateTable(String),
    /// Raw byte decoding failed.
    Decode(String),
    /// An on-disk file did not match the expected format (bad magic,
    /// unsupported version, truncated metadata, ...).
    InvalidFormat(String),
    /// An operating-system I/O operation failed.
    ///
    /// Stored as the rendered message (not the [`std::io::Error`] itself) so
    /// the error type stays `Clone + PartialEq` for the rest of the crate.
    Io(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TypeMismatch {
                column,
                expected,
                found,
            } => write!(
                f,
                "type mismatch in column `{column}`: expected {expected}, found {found}"
            ),
            StorageError::ValueTooWide {
                column,
                declared,
                actual,
            } => write!(
                f,
                "value too wide for column `{column}`: declared {declared} bytes, got {actual}"
            ),
            StorageError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "row arity mismatch: schema has {expected} columns, row has {found}"
                )
            }
            StorageError::RecordTooLarge {
                record_len,
                max_payload,
            } => write!(
                f,
                "record of {record_len} bytes exceeds maximum page payload of {max_payload} bytes"
            ),
            StorageError::InvalidRid { page, slot } => {
                write!(f, "invalid row id: page {page}, slot {slot}")
            }
            StorageError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            StorageError::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            StorageError::PageCorruption(msg) => write!(f, "page corruption: {msg}"),
            StorageError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            StorageError::DuplicateTable(name) => write!(f, "table `{name}` already exists"),
            StorageError::Decode(msg) => write!(f, "decode error: {msg}"),
            StorageError::InvalidFormat(msg) => write!(f, "invalid file format: {msg}"),
            StorageError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

/// Convenient result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_fields() {
        let e = StorageError::TypeMismatch {
            column: "a".into(),
            expected: "char(10)".into(),
            found: "int".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("`a`"));
        assert!(msg.contains("char(10)"));

        let e = StorageError::ValueTooWide {
            column: "c".into(),
            declared: 4,
            actual: 9,
        };
        assert!(e.to_string().contains("declared 4"));

        let e = StorageError::InvalidRid { page: 3, slot: 7 };
        assert!(e.to_string().contains("page 3"));
        assert!(e.to_string().contains("slot 7"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_e: &E) {}
        assert_error(&StorageError::UnknownColumn("x".into()));
    }
}
